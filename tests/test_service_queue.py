"""The durable on-disk job queue: leases, heartbeats, reclaim, recovery.

Everything here runs the queue *in process* (no spawned workers), so each
atomic transition — claim race, lease expiry, crash between lease and ack,
restart of the queue directory — can be staged deterministically.  The
subprocess-worker and ``--backend queue`` paths live in
``test_queue_backend.py``; the HTTP service in ``test_service_http.py``.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.runner.resilience import run_tasks
from repro.service.queue import (
    DurableQueue,
    LeaseLost,
    QueueResult,
    TaskSpec,
    WorkerOptions,
    worker_loop,
)


def square(x):
    """Module-level task fn: picklable into task files by name."""
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


def build_row(design: str, seed: int) -> dict:
    """A deterministic, structured 'detection result' payload."""
    return {
        "design": design,
        "seed": seed,
        "coverage": round((seed * 37 % 100) / 3.0, 6),
        "detected": [f"t{i}" for i in range(seed % 4)],
    }


INIT_CALLS: list[tuple] = []


def record_init(*args):
    INIT_CALLS.append(args)


@pytest.fixture
def queue(tmp_path) -> DurableQueue:
    return DurableQueue(tmp_path / "q", lease_seconds=5.0)


class TestTaskSpec:
    def test_job_ids_are_content_addressed(self):
        a = TaskSpec(fn=square, args=(3,))
        b = TaskSpec(fn=square, args=(3,))
        assert a.job_id() == b.job_id()
        assert len(a.job_id()) == 64  # sha256 hex, ArtifactCache addressing

    def test_job_ids_differ_by_args_fn_and_label(self):
        base = TaskSpec(fn=square, args=(3,))
        assert TaskSpec(fn=square, args=(4,)).job_id() != base.job_id()
        assert TaskSpec(fn=boom, args=(3,)).job_id() != base.job_id()
        assert TaskSpec(fn=square, args=(3,), label="x").job_id() != base.job_id()

    def test_kwarg_order_is_canonical(self):
        a = TaskSpec(fn=build_row, kwargs={"design": "c17", "seed": 1})
        b = TaskSpec(fn=build_row, kwargs={"seed": 1, "design": "c17"})
        assert a.job_id() == b.job_id()


class TestQueueLifecycle:
    def test_put_claim_ack_roundtrip(self, queue):
        job_id = queue.put(TaskSpec(fn=square, args=(7,)))
        assert queue.status(job_id) == "queued"
        lease = queue.claim("w1")
        assert lease.job_id == job_id
        assert lease.deliveries == 1
        assert lease.spec.args == (7,)
        assert queue.status(job_id) == "leased"
        queue.ack(lease, 49, elapsed=0.01)
        assert queue.status(job_id) == "done"
        result = queue.result(job_id)
        assert result.ok and result.value == 49 and result.worker == "w1"
        # the task file is retired: nothing left to claim
        assert queue.claim("w2") is None

    def test_put_is_idempotent_per_id(self, queue):
        spec = TaskSpec(fn=square, args=(2,))
        job_id = queue.put(spec)
        assert queue.put(spec) == job_id
        assert len(list(queue.tasks_dir.glob("*.task"))) == 1
        lease = queue.claim("w1")
        queue.ack(lease, 4)
        # re-enqueueing finished work is also a no-op
        assert queue.put(spec) == job_id
        assert queue.status(job_id) == "done"

    def test_fail_records_error_and_does_not_retry(self, queue):
        job_id = queue.put(TaskSpec(fn=boom, args=(1,)))
        lease = queue.claim("w1")
        queue.fail(lease, ValueError("boom 1"))
        assert queue.status(job_id) == "failed"
        result = queue.result(job_id)
        assert not result.ok
        assert result.error["type"] == "ValueError"
        assert "boom 1" in result.error["message"]
        assert queue.claim("w2") is None  # the queue never re-runs failures

    def test_cancel_removes_queued_but_not_leased_jobs(self, queue):
        job_id = queue.put(TaskSpec(fn=square, args=(1,)))
        other = queue.put(TaskSpec(fn=square, args=(2,)))
        lease = queue.claim("w1")
        leased_id, free_id = lease.job_id, other if lease.job_id == job_id else job_id
        assert queue.cancel(free_id) is True
        assert queue.status(free_id) == "unknown"
        assert queue.cancel(leased_id) is False
        assert queue.status(leased_id) == "leased"

    def test_claim_is_oldest_first(self, queue):
        first = queue.put(TaskSpec(fn=square, args=(1,)))
        time.sleep(0.02)
        queue.put(TaskSpec(fn=square, args=(2,)))
        assert queue.claim("w").job_id == first

    def test_claim_race_has_one_winner(self, queue):
        job_id = queue.put(TaskSpec(fn=square, args=(5,)))
        assert queue.claim("w1").job_id == job_id
        assert queue.claim("w2") is None  # exclusive lease-create decides

    def test_release_requeues_unfinished_work(self, queue):
        job_id = queue.put(TaskSpec(fn=square, args=(5,)))
        lease = queue.claim("w1")
        queue.release(lease)
        assert queue.status(job_id) == "queued"
        again = queue.claim("w2")
        assert again.job_id == job_id
        # a release is not a reclaim: delivery count restarts from the lease
        assert again.deliveries == 1


class TestLeasesAndHeartbeats:
    def test_heartbeat_extends_the_lease(self, queue):
        queue.put(TaskSpec(fn=square, args=(1,)))
        lease = queue.claim("w1")
        before = lease.expires_at
        time.sleep(0.05)
        queue.heartbeat(lease)
        assert lease.expires_at > before

    def test_heartbeat_after_steal_raises_lease_lost(self, tmp_path):
        queue = DurableQueue(tmp_path / "q", lease_seconds=0.1)
        queue.put(TaskSpec(fn=square, args=(1,)))
        lease = queue.claim("w1")
        time.sleep(0.15)  # let it expire
        stolen = queue.claim("w2")
        assert stolen is not None and stolen.deliveries == 2
        with pytest.raises(LeaseLost):
            queue.heartbeat(lease)

    def test_expired_lease_is_reclaimed_with_delivery_count(self, tmp_path):
        queue = DurableQueue(tmp_path / "q", lease_seconds=0.1)
        job_id = queue.put(TaskSpec(fn=square, args=(3,)))
        assert queue.claim("dead").job_id == job_id
        time.sleep(0.15)
        lease = queue.claim("alive")
        assert lease.job_id == job_id
        assert lease.deliveries == 2
        assert queue.stats()["reclaims"] == 1

    def test_force_expire_preserves_delivery_count(self, queue):
        job_id = queue.put(TaskSpec(fn=square, args=(3,)))
        lease = queue.claim("w1")
        assert queue.expire_leases_of([lease.pid]) == 1
        # the lease file survives with expires_at=0, so the reclaim sees
        # deliveries=1 and increments instead of restarting
        reclaimed = queue.claim("w2")
        assert reclaimed.job_id == job_id
        assert reclaimed.deliveries == 2

    def test_corrupt_task_file_fails_permanently(self, queue):
        job_id = queue.put(TaskSpec(fn=square, args=(1,)))
        (queue.tasks_dir / f"{job_id}.task").write_bytes(b"not a pickle")
        assert queue.claim("w1") is None
        result = queue.result(job_id)
        assert result is not None and not result.ok
        assert result.error["type"] == "CorruptTask"
        assert queue.stats()["corrupt_tasks"] == 1

    def test_crash_between_result_and_cleanup_is_retired_not_rerun(self, queue):
        # Simulate a worker dying after writing the result but before
        # removing the task file: the next claim sweep must retire it.
        job_id = queue.put(TaskSpec(fn=square, args=(6,)))
        lease = queue.claim("w1")
        queue._store_result(  # result written, cleanup "crashed"
            QueueResult(
                job_id=job_id, ok=True, value=36, worker=lease.worker, deliveries=1
            )
        )
        del lease  # the worker is gone; its lease file lingers
        assert (queue.tasks_dir / f"{job_id}.task").exists()
        assert queue.claim("w2") is None  # sweep retires instead of re-running
        assert not (queue.tasks_dir / f"{job_id}.task").exists()
        assert queue.result(job_id).value == 36


class TestStatsAndStop:
    def test_stats_counts_each_state(self, tmp_path):
        queue = DurableQueue(tmp_path / "q", lease_seconds=0.1)
        queue.put(TaskSpec(fn=square, args=(1,)))
        queue.put(TaskSpec(fn=square, args=(2,)))
        done_lease = queue.claim("w0")
        queue.ack(done_lease, 1)
        queue.claim("w1")
        queue.put(TaskSpec(fn=square, args=(3,)))
        time.sleep(0.15)  # w1's lease expires
        stats = queue.stats()
        assert stats["queued"] == 1
        assert stats["leased"] == 0
        assert stats["expired_leases"] == 1
        assert stats["done"] == 1

    def test_stop_marker_round_trips(self, queue):
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()


class TestWorkerLoop:
    def test_in_process_worker_drains_the_queue(self, queue):
        ids = [queue.put(TaskSpec(fn=square, args=(i,), label=f"t{i}")) for i in range(4)]
        done = worker_loop(queue, WorkerOptions(worker_id="w", max_idle_seconds=0.0))
        assert done == 4
        assert [queue.result(job_id).value for job_id in ids] == [0, 1, 4, 9]
        liveness = queue.worker_liveness()
        assert liveness["w"]["jobs_done"] == 4

    def test_max_jobs_bounds_one_loop(self, queue):
        for i in range(3):
            queue.put(TaskSpec(fn=square, args=(i,), label=f"t{i}"))
        assert worker_loop(queue, WorkerOptions(max_jobs=2)) == 2
        assert queue.stats()["done"] == 2

    def test_stop_request_ends_the_loop_immediately(self, queue):
        queue.put(TaskSpec(fn=square, args=(1,)))
        queue.request_stop()
        assert worker_loop(queue, WorkerOptions()) == 0
        assert queue.status(queue.put(TaskSpec(fn=square, args=(1,)))) == "queued"

    def test_task_failure_is_recorded_not_raised(self, queue):
        job_id = queue.put(TaskSpec(fn=boom, args=(2,)))
        done = worker_loop(queue, WorkerOptions(max_jobs=1))
        assert done == 1
        result = queue.result(job_id)
        assert not result.ok and result.error["type"] == "ValueError"

    def test_initializer_runs_once_per_worker(self, queue):
        INIT_CALLS.clear()
        for i in range(3):
            queue.put(
                TaskSpec(fn=square, args=(i,), label=f"t{i}",
                         initializer=record_init, initargs=("cfg",))
            )
        worker_loop(queue, WorkerOptions(max_idle_seconds=0.0))
        assert INIT_CALLS == [("cfg",)]


class TestEventLogRotation:
    """events.log rotation: bounded size, lifetime counters conserved."""

    def test_rotation_bounds_the_log_and_conserves_counts(self, tmp_path):
        queue = DurableQueue(tmp_path / "q", events_max_bytes=512)
        for index in range(60):
            queue._log_event("reclaim", job_id=f"job{index:04d}", deliveries=2)
        # The active segment rotated at least once and stays bounded
        # (rotation triggers right after the append that crosses the cap).
        assert (queue.root / "events.log.1").exists()
        assert queue.events_totals_path.exists()
        if queue.events_path.exists():  # absent right after a rotation
            assert queue.events_path.stat().st_size <= 2 * queue.events_max_bytes
        # Lifetime counters survive every rotation: totals + active segment.
        assert queue._count_events()["reclaim"] == 60
        assert queue.stats()["reclaims"] == 60

    def test_rotation_preserves_mixed_event_kinds(self, tmp_path):
        queue = DurableQueue(tmp_path / "q", events_max_bytes=256)
        for index in range(20):
            queue._log_event("reclaim", job_id=f"r{index}")
            queue._log_event("corrupt_task", job_id=f"c{index}")
        stats = queue.stats()
        assert stats["reclaims"] == 20
        assert stats["corrupt_tasks"] == 20

    def test_rotated_segment_is_raw_history_not_counted_twice(self, tmp_path):
        queue = DurableQueue(tmp_path / "q", events_max_bytes=128)
        for index in range(10):
            queue._log_event("reclaim", job_id=f"j{index}")
        # events.log.1 keeps one raw segment for inspection; the totals file
        # plus the live segment must already account for every event.
        segment_lines = (queue.root / "events.log.1").read_text().splitlines()
        assert segment_lines and all('"reclaim"' in line for line in segment_lines)
        assert queue._count_events()["reclaim"] == 10

    def test_events_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="events_max_bytes"):
            DurableQueue(tmp_path / "q", events_max_bytes=0)


class TestDurableRecovery:
    """The ISSUE's satellite scenario: crash between lease and ack,
    restart the queue directory, and the job is reclaimed exactly once
    with a result bit-identical to the serial backend's."""

    TASKS = [("s13207_like", 3), ("c6288_like", 11), ("mips16_like", 7)]

    def test_recovery_after_worker_crash_matches_serial(self, tmp_path):
        serial = run_tasks(
            build_row, self.TASKS, backend="serial"
        ).results

        root = tmp_path / "q"
        queue = DurableQueue(root, lease_seconds=0.2)
        ids = [
            queue.put(TaskSpec(fn=build_row, args=task, label=f"row{i}"))
            for i, task in enumerate(self.TASKS)
        ]

        # A worker leases the first job and "crashes": no ack, no release,
        # no heartbeat — its process is simply gone.
        crashed = queue.claim("doomed-worker")
        assert crashed.job_id == ids[0]

        # The machine restarts: a fresh DurableQueue over the same
        # directory sees everything the crashed process left behind.
        time.sleep(0.25)  # the dead worker's lease expires
        restarted = DurableQueue(root, lease_seconds=5.0)
        done = worker_loop(
            restarted, WorkerOptions(worker_id="survivor", max_idle_seconds=0.0)
        )
        assert done == 3

        # Reclaimed exactly once, and only the crashed job.
        assert restarted.stats()["reclaims"] == 1
        crashed_result = restarted.result(ids[0])
        assert crashed_result.deliveries == 2
        assert all(restarted.result(job_id).deliveries == 1 for job_id in ids[1:])

        # Bit-identical to the serial reference, row by row.  (The whole
        # lists can't be compared as one pickle: the serial rows share
        # interned key strings, which pickle memoises, while queue rows
        # were unpickled from separate per-job files.)
        queued_results = [restarted.result(job_id).value for job_id in ids]
        assert queued_results == serial
        for queued_row, serial_row in zip(queued_results, serial):
            assert pickle.dumps(queued_row) == pickle.dumps(serial_row)

    def test_restart_preserves_done_results(self, tmp_path):
        root = tmp_path / "q"
        queue = DurableQueue(root)
        job_id = queue.put(TaskSpec(fn=square, args=(9,)))
        queue.ack(queue.claim("w"), 81)
        reopened = DurableQueue(root)
        assert reopened.status(job_id) == "done"
        assert reopened.result(job_id).value == 81
