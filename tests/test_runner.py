"""Tests for the experiment registry, runner, sharding helpers, and CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments import common
from repro.runner.execution import ExperimentRunner, run_experiment
from repro.runner.parallel import make_shards, resolve_jobs
from repro.runner.registry import (
    ExperimentSpec,
    GridCell,
    all_experiments,
    get_experiment,
    register,
)

#: Deliberately tiny profile so the runner tests finish in seconds.
TINY = common.TINY


@pytest.fixture(autouse=True)
def _reset_default_cache():
    """Keep the process-wide default cache from leaking between tests."""
    from repro.runner.cache import set_default_cache

    yield
    set_default_cache(None)


class TestRegistry:
    def test_all_twelve_harnesses_registered(self):
        names = {spec.name for spec in all_experiments()}
        assert names == {
            "figure2", "figure3", "figure5", "figure6", "figure7",
            "table1", "table2", "transfer", "ablations", "pipeline",
            "sequential", "sequential_detect",
        }

    def test_every_module_implements_the_protocol(self):
        for spec in all_experiments():
            module = spec.resolve()
            for hook in ("cells", "run_cell", "collect", "report"):
                assert callable(getattr(module, hook)), (spec.name, hook)

    def test_every_experiment_produces_cells(self):
        for spec in all_experiments():
            cells = spec.build_cells(TINY, {})
            assert cells, spec.name
            for cell in cells:
                assert isinstance(cell, GridCell)
                assert cell.name

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("figure42")

    def test_scalar_options_are_not_iterated_characterwise(self):
        # CLI --set values arrive as scalars; a bare design string must become
        # a one-element grid, not one cell per character.
        cells = get_experiment("figure6").build_cells(TINY, {"designs": "c2670_like"})
        assert [cell.params["design"] for cell in cells] == ["c2670_like", "c2670_like"]
        cells = get_experiment("table2").build_cells(TINY, {"designs": "c2670_like"})
        assert {cell.params["design"] for cell in cells} == {"c2670_like"}
        cells = get_experiment("figure5").build_cells(TINY, {"widths": 4})
        assert cells[0].params["widths"] == (4,)
        cells = get_experiment("pipeline").build_cells(TINY, {"designs": "c6288_like"})
        assert [cell.name for cell in cells] == ["c6288_like"]

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option.*design.*supported.*designs"):
            run_experiment("table2", profile=TINY, options={"design": "c2670_like"})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(ExperimentSpec(name="figure2", module="x", title="dup"))

    def test_missing_protocol_hook_detected(self):
        spec = ExperimentSpec(name="bogus", module="repro.experiments.reporting",
                              title="not a harness")
        with pytest.raises(TypeError, match="does not define"):
            spec.resolve()


class TestShards:
    def test_shards_cover_every_pair_exactly_once(self):
        shards = make_shards(10, 4)
        seen = [pair for shard in shards for pair in shard.pairs]
        expected = [(i, j) for i in range(10) for j in range(i + 1, 10)]
        assert sorted(seen) == expected

    def test_shard_seeds_deterministic(self):
        first = make_shards(8, 3, base_seed=5)
        second = make_shards(8, 3, base_seed=5)
        assert first == second
        assert len({shard.seed for shard in first}) == len(first)

    def test_single_shard(self):
        (shard,) = make_shards(4, 1)
        assert len(shard.pairs) == 6

    def test_empty_and_invalid(self):
        assert make_shards(1, 4) == []
        with pytest.raises(ValueError):
            make_shards(4, 0)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-2) >= 1


class TestRunner:
    def test_serial_run_collects_and_reports(self, tmp_path):
        run = run_experiment(
            "transfer", profile=TINY, jobs=1, results_dir=tmp_path,
            options={"design": "c6288_like"},
        )
        assert run.experiment == "transfer"
        assert run.profile == "tiny"
        assert len(run.outcomes) == 1
        assert run.collected.design == "c6288_like"
        assert "coverage" in run.report_text

        # Structured artifacts: one JSONL record per cell + final run record.
        stream = (tmp_path / "transfer-tiny.jsonl").read_text().splitlines()
        assert len(stream) == 1
        record = json.loads(stream[0])
        assert record["experiment"] == "transfer"
        assert record["result"]["coverage_percent"] >= 0.0

        final = json.loads((tmp_path / "transfer-tiny.json").read_text())
        assert final["report"] == run.report_text
        assert len(final["cells"]) == 1

    def test_parallel_run_matches_grid_order(self, tmp_path):
        # Forked workers inherit the in-memory context cache; clear it so the
        # disk-cache assertions below observe real worker activity.
        common.clear_context_cache()
        runner = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache",
                                  results_dir=tmp_path / "results")
        run = runner.run("figure3", profile=TINY, options={"design": "c6288_like"})
        assert [outcome.name for outcome in run.outcomes] == ["default", "boosted"]
        assert set(run.collected) == {"default", "boosted"}
        assert run.jobs == 2
        assert run.cache_stats is not None
        assert run.cache_stats["stores"] + run.cache_stats["hits"] > 0

    def test_profile_resolution_by_name(self):
        with pytest.raises(KeyError, match="unknown profile"):
            run_experiment("transfer", profile="huge")

    def test_sequential_cells_are_cache_and_shard_stable(self, tmp_path):
        """The sequential harness: jobs=1 == jobs=2, second run fully cached."""
        options = {"designs": "s13207_like", "cycles": 3, "counts": 2}
        common.clear_context_cache()
        serial = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache").run(
            "sequential", profile=TINY, options=options
        )
        assert [outcome.name for outcome in serial.outcomes] == [
            "s13207_like-c3-consecutive-k2",
            "s13207_like-c3-cumulative-k2",
        ]
        assert serial.cache_stats is not None
        assert serial.cache_stats["stores"] > 0

        # A rerun on the same cache computes nothing.
        rerun = ExperimentRunner(jobs=1, cache_dir=tmp_path / "cache").run(
            "sequential", profile=TINY, options=options
        )
        assert rerun.cache_stats["misses"] == 0
        assert rerun.cache_stats["stores"] == 0

        # Worker processes produce bit-identical cell results in grid order.
        sharded = ExperimentRunner(jobs=2, cache_dir=tmp_path / "cache").run(
            "sequential", profile=TINY, options=options
        )
        assert [outcome.name for outcome in sharded.outcomes] == [
            outcome.name for outcome in serial.outcomes
        ]
        assert [outcome.result for outcome in sharded.outcomes] == [
            outcome.result for outcome in serial.outcomes
        ]

    def test_sequential_rejects_combinational_design(self):
        with pytest.raises(ValueError, match="combinational"):
            run_experiment(
                "sequential", profile=TINY, options={"designs": "c2670_like"}
            )

    def test_run_wrappers_return_native_types(self):
        results = __import__("repro.experiments.figure2", fromlist=["run"]).run(
            design="c6288_like", profile=TINY
        )
        assert len(results) == 4
        assert {(r.reward_mode, r.masking) for r in results} == {
            ("per_step", False), ("per_step", True),
            ("end_of_episode", False), ("end_of_episode", True),
        }


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("figure2", "table2", "pipeline"):
            assert name in out

    def test_run_and_report_roundtrip(self, tmp_path, capsys):
        code = cli_main([
            "run", "transfer", "--profile", "tiny", "--jobs", "1",
            "--results-dir", str(tmp_path),
            "--cache-dir", str(tmp_path / "cache"),
            "--set", "design=c6288_like",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "transfer [tiny] finished" in out
        assert "artifact cache:" in out

        assert cli_main(["report", "--results-dir", str(tmp_path)]) == 0
        assert "transfer" in capsys.readouterr().out

        assert cli_main(["report", "transfer", "--results-dir", str(tmp_path)]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_cache_subcommand(self, tmp_path, capsys):
        from repro.runner.cache import ArtifactCache, set_default_cache

        # No cache configured anywhere -> usage hint, exit 1.
        set_default_cache(None)
        assert cli_main(["cache"]) == 1
        assert "no artifact cache configured" in capsys.readouterr().out

        # Configured but never written to -> informative no-op, exit 0.
        assert cli_main(["cache", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "does not exist yet" in capsys.readouterr().out

        cache = ArtifactCache(tmp_path / "cache")
        cache.store("rare_nets", [1, 2, 3], key="a")
        cache.store("sequential_trojans", [], key="b")
        assert cli_main(["cache", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "rare_nets" in out and "sequential_trojans" in out
        assert "deterrent cache prune" in out  # eviction is advertised

    def test_cache_prune_subcommand(self, tmp_path, capsys):
        from repro.runner.cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        for index in range(4):
            cache.store("rare_nets", list(range(64)), key=index)

        # Missing directory: clean no-op, exit 0 (never a traceback).
        assert cli_main(["cache", "prune", "--cache-dir", str(tmp_path / "nope")]) == 0
        assert "does not exist yet" in capsys.readouterr().out

        # Dry run removes nothing.
        assert cli_main([
            "cache", "prune", "--cache-dir", str(tmp_path / "cache"),
            "--max-size", "0", "--dry-run",
        ]) == 0
        assert "would remove 4 entries" in capsys.readouterr().out
        assert len(cache.entries()) == 4

        # Age-based eviction empties the kind, which stays reported as zero.
        assert cli_main([
            "cache", "prune", "--cache-dir", str(tmp_path / "cache"),
            "--max-age", "0",
        ]) == 0
        assert "removed 4 entries" in capsys.readouterr().out
        assert cache.entries() == []
        assert cli_main(["cache", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "rare_nets" in out and "0 entries" in out

        # No bounds: only stale debris is swept, entries are kept.
        import os
        import time

        cache.store("rare_nets", [1], key="keep")
        stale_tmp = tmp_path / "cache" / "rare_nets" / "stale.tmp"
        stale_tmp.write_bytes(b"x")
        ancient = time.time() - 48 * 3600
        os.utime(stale_tmp, (ancient, ancient))
        assert cli_main([
            "cache", "prune", "--cache-dir", str(tmp_path / "cache"), "--dry-run",
        ]) == 0
        out = capsys.readouterr().out
        assert "would remove 0 entries" in out and "would be swept" in out
        assert stale_tmp.exists()
        assert cli_main(["cache", "prune", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "removed 0 entries" in out and "debris" in out
        assert len(cache.entries()) == 1

        # --cache-dir before the subcommand must target the same cache (the
        # prune subparser merges, not clobbers, the parent option).
        assert cli_main([
            "cache", "--cache-dir", str(tmp_path / "cache"), "prune", "--max-age", "0",
        ]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert cache.entries() == []

    def test_report_without_runs(self, tmp_path, capsys):
        assert cli_main(["report", "--results-dir", str(tmp_path)]) == 1
        assert "no saved runs" in capsys.readouterr().out

    def test_bad_option_syntax(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["run", "transfer", "--set", "designc6288"])

    def test_unknown_backend_is_a_usage_error(self, capsys):
        # argparse choices: clean usage error, exit code 2, no traceback.
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", "transfer", "--backend", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "serial" in err and "process" in err and "thread" in err

    def test_thread_backend_smoke(self, tmp_path, capsys):
        code = cli_main([
            "run", "transfer", "--profile", "tiny",
            "--backend", "thread", "--jobs", "2",
            "--results-dir", str(tmp_path),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution: backend=thread, clean" in out
        record = json.loads((tmp_path / "transfer-tiny.json").read_text())
        assert record["backend"] == "thread"
        assert record["resilience"]["retries"] == 0

    def test_bad_policy_value_is_a_usage_error(self, capsys):
        assert cli_main(["run", "transfer", "--max-attempts", "0"]) == 2
        assert "max_attempts" in capsys.readouterr().err
        assert cli_main(["run", "transfer", "--cell-timeout", "-1"]) == 2
        assert "timeout" in capsys.readouterr().err
