"""Tests for scan conversion, validation, statistics, generators, and the library."""

import pytest

from repro.circuits import generators
from repro.circuits.gates import GateType
from repro.circuits.library import (
    TABLE2_BENCHMARKS,
    benchmark_entry,
    benchmark_suite,
    load_benchmark,
)
from repro.circuits.netlist import Netlist
from repro.circuits.scan import ensure_combinational, full_scan
from repro.circuits.stats import netlist_stats
from repro.circuits.validate import validate_netlist
from repro.simulation.rare_nets import extract_rare_nets


class TestFullScan:
    def test_flip_flop_outputs_become_inputs(self):
        sequential = generators.sequential_controller("seq", state_bits=4, data_width=4)
        scanned, info = full_scan(sequential)
        assert not scanned.is_sequential
        assert len(info.pseudo_inputs) == len(sequential.flip_flops)
        for pseudo in info.pseudo_inputs:
            assert scanned.is_input(pseudo)

    def test_flip_flop_inputs_become_outputs(self):
        sequential = generators.sequential_controller("seq", state_bits=4, data_width=4)
        scanned, info = full_scan(sequential)
        for pseudo in info.pseudo_outputs:
            assert scanned.is_output(pseudo)

    def test_combinational_netlist_untouched(self, c17):
        assert ensure_combinational(c17) is c17

    def test_scan_preserves_gate_count(self):
        sequential = generators.sequential_controller("seq", state_bits=4, data_width=4)
        scanned, _ = full_scan(sequential)
        assert scanned.num_gates == sequential.num_gates

    def test_scanned_netlist_valid(self):
        sequential = generators.sequential_controller("seq", state_bits=5, data_width=6)
        scanned, _ = full_scan(sequential)
        assert validate_netlist(scanned).ok


class TestValidation:
    def test_valid_circuit_passes(self, c17):
        report = validate_netlist(c17)
        assert report.ok
        assert not report.errors

    def test_undriven_gate_input_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("y", GateType.AND, ("a", "ghost"))
        netlist.add_output("y")
        report = validate_netlist(netlist)
        assert not report.ok
        assert any("ghost" in error for error in report.errors)

    def test_undriven_output_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("nowhere")
        assert not validate_netlist(netlist).ok

    def test_dangling_net_is_warning(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("unused", GateType.NOT, ("a",))
        netlist.add_gate("y", GateType.NOT, ("a",))
        netlist.add_output("y")
        report = validate_netlist(netlist)
        assert report.ok
        assert report.warnings

    def test_strict_promotes_warnings(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("unused", GateType.NOT, ("a",))
        netlist.add_gate("y", GateType.NOT, ("a",))
        netlist.add_output("y")
        assert not validate_netlist(netlist, strict=True).ok

    def test_cycle_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("x", GateType.AND, ("a", "y"))
        netlist.add_gate("y", GateType.OR, ("x", "a"))
        netlist.add_output("y")
        report = validate_netlist(netlist)
        assert any("cycle" in error for error in report.errors)


class TestStats:
    def test_c17_stats(self, c17):
        stats = netlist_stats(c17)
        assert stats.num_gates == 6
        assert stats.num_inputs == 5
        assert stats.num_outputs == 2
        assert stats.gate_type_counts == {"NAND": 6}
        assert stats.depth == 3
        assert stats.num_nets == 11

    def test_multiplier_stats(self, small_multiplier):
        stats = netlist_stats(small_multiplier)
        assert stats.num_gates == small_multiplier.num_gates
        assert stats.num_flip_flops == 0


class TestGenerators:
    def test_c17_matches_published_structure(self, c17):
        assert c17.num_gates == 6
        assert all(gate.gate_type is GateType.NAND for gate in c17.gates)

    def test_generators_are_deterministic(self):
        first = generators.alu_control_circuit("x", seed=5)
        second = generators.alu_control_circuit("x", seed=5)
        assert [g.output for g in first.gates] == [g.output for g in second.gates]

    def test_generator_seed_changes_structure(self):
        first = generators.random_logic_circuit("x", seed=1)
        second = generators.random_logic_circuit("x", seed=2)
        first_types = [g.gate_type for g in first.gates]
        second_types = [g.gate_type for g in second.gates]
        assert first_types != second_types

    def test_random_logic_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generators.random_logic_circuit("x", num_inputs=1, num_gates=10)

    @pytest.mark.parametrize("name", ["a", "b"])
    def test_multiplier_has_rare_top_bits(self, name):
        netlist = generators.multiplier_circuit(name, width=5)
        rare = extract_rare_nets(netlist, threshold=0.1, num_patterns=2048, seed=0)
        assert len(rare) > 5

    def test_mips_circuit_has_many_rare_nets(self):
        netlist = generators.mips16_circuit("mips_test", data_width=6, num_registers=4, seed=9)
        rare = extract_rare_nets(netlist, threshold=0.1, num_patterns=2048, seed=0)
        assert len(rare) >= 20


class TestLibrary:
    def test_suite_contains_all_paper_designs(self):
        assert set(TABLE2_BENCHMARKS) <= set(benchmark_suite())

    @pytest.mark.parametrize("name", benchmark_suite())
    def test_all_benchmarks_build_and_validate(self, name):
        netlist = load_benchmark(name)
        assert not netlist.is_sequential
        assert validate_netlist(netlist).ok

    def test_sequential_benchmarks_expose_raw_view(self):
        raw = load_benchmark("s13207_like", combinational_view=False)
        assert raw.is_sequential

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("does_not_exist")

    def test_entries_carry_paper_metadata(self):
        entry = benchmark_entry("c6288_like")
        assert entry.paper_name == "c6288"
        assert entry.paper_num_rare_nets == 186

    @pytest.mark.parametrize("name", TABLE2_BENCHMARKS)
    def test_benchmarks_have_rare_nets_at_default_threshold(self, name):
        netlist = load_benchmark(name)
        rare = extract_rare_nets(netlist, threshold=0.1, num_patterns=1024, seed=0)
        assert len(rare) >= 10
