"""Tests for the DETERRENT core: config, compatibility, environment, agent,
pattern generation, and the end-to-end pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agent import DeterrentAgent
from repro.core.compatibility import compute_compatibility
from repro.core.config import QUICK_PROFILE, DeterrentConfig
from repro.core.environment import TriggerActivationEnv
from repro.core.patterns import PatternSet, generate_patterns
from repro.core.pipeline import DeterrentPipeline
from repro.simulation.logic_sim import simulate_pattern
from repro.simulation.rare_nets import extract_rare_nets


class TestConfig:
    def test_defaults_are_paper_defaults(self):
        config = DeterrentConfig()
        assert config.rareness_threshold == 0.1
        assert config.reward_power == 2.0
        assert config.masking is True

    def test_invalid_reward_mode_rejected(self):
        with pytest.raises(ValueError):
            DeterrentConfig(reward_mode="sometimes")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            DeterrentConfig(rareness_threshold=0.9)

    def test_invalid_reward_power_rejected(self):
        with pytest.raises(ValueError):
            DeterrentConfig(reward_power=0.5)

    def test_boosted_exploration_changes_effective_ppo(self):
        config = DeterrentConfig(boosted_exploration=True)
        assert config.effective_ppo().entropy_coef == 1.0
        assert DeterrentConfig().effective_ppo().entropy_coef != 1.0

    def test_with_overrides_returns_copy(self):
        config = DeterrentConfig()
        other = config.with_overrides(k_patterns=3)
        assert other.k_patterns == 3
        assert config.k_patterns != 3

    def test_quick_profile_valid(self):
        assert QUICK_PROFILE.total_training_steps > 0


class TestCompatibility:
    def test_matrix_is_symmetric_with_true_diagonal(self, multiplier_compatibility):
        matrix = multiplier_compatibility.matrix
        assert np.array_equal(matrix, matrix.T)
        assert matrix.diagonal().all()

    def test_pairwise_entries_match_sat(self, multiplier_compatibility):
        analysis = multiplier_compatibility
        count = analysis.num_rare_nets
        rng = np.random.default_rng(0)
        for _ in range(10):
            i, j = rng.integers(count), rng.integers(count)
            expected = analysis.justifier.are_compatible(
                {analysis.rare_nets[i].net: analysis.rare_nets[i].rare_value},
                {analysis.rare_nets[j].net: analysis.rare_nets[j].rare_value},
            )
            assert analysis.compatible(i, j) == expected

    def test_compatible_with_all(self, multiplier_compatibility):
        analysis = multiplier_compatibility
        assert analysis.compatible_with_all(0, set())
        compatible = {j for j in range(analysis.num_rare_nets) if j and analysis.compatible(0, j)}
        if compatible:
            member = next(iter(compatible))
            assert analysis.compatible_with_all(member, {0})

    def test_index_of(self, multiplier_compatibility):
        name = multiplier_compatibility.rare_nets[0].net
        assert multiplier_compatibility.index_of(name) == 0
        with pytest.raises(KeyError):
            multiplier_compatibility.index_of("ghost")

    def test_requirements_mapping(self, multiplier_compatibility):
        requirements = multiplier_compatibility.requirements([0, 1])
        assert len(requirements) == 2

    def test_adjacency_consistent_with_matrix(self, multiplier_compatibility):
        adjacency = multiplier_compatibility.adjacency()
        for node, neighbours in adjacency.items():
            for neighbour in neighbours:
                assert multiplier_compatibility.compatible(node, neighbour)
                assert node != neighbour

    def test_unsatisfiable_rare_nets_are_dropped(self, small_multiplier):
        rare = extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=1024, seed=0)
        analysis = compute_compatibility(small_multiplier, rare)
        for dropped in analysis.unsatisfiable:
            assert not analysis.justifier.is_satisfiable({dropped.net: dropped.rare_value})

    def test_n_workers_validated(self, small_multiplier, multiplier_rare_nets):
        with pytest.raises(ValueError):
            compute_compatibility(small_multiplier, multiplier_rare_nets, n_workers=0)


class TestEnvironment:
    def make_env(self, compatibility, **kwargs):
        defaults = dict(episode_length=10, reward_mode="per_step", masking=True,
                        exact_set_reward=False, seed=0)
        defaults.update(kwargs)
        return TriggerActivationEnv(compatibility, **defaults)

    def test_observation_is_binary_membership_vector(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility)
        observation = env.reset()
        assert observation.shape == (multiplier_compatibility.num_rare_nets,)
        assert observation.sum() == 1.0

    def test_invalid_action_rejected(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility)
        with pytest.raises(ValueError):
            env.step(multiplier_compatibility.num_rare_nets + 5)

    def test_incompatible_action_leaves_state_unchanged(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, masking=False)
        observation = env.reset()
        start = int(observation.argmax())
        incompatible = [
            j for j in range(multiplier_compatibility.num_rare_nets)
            if not multiplier_compatibility.compatible(start, j)
        ]
        if not incompatible:
            pytest.skip("every pair is compatible in this circuit")
        result = env.step(incompatible[0])
        assert result.reward == 0.0
        assert np.array_equal(result.observation, observation)

    def test_compatible_action_grows_state_and_rewards_square(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, masking=True)
        observation = env.reset()
        mask = env.action_mask()
        action = int(mask.argmax())
        result = env.step(action)
        assert result.observation.sum() == observation.sum() + 1
        assert result.reward == pytest.approx(result.observation.sum() ** 2)

    def test_mask_excludes_selected_and_incompatible(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility)
        observation = env.reset()
        start = int(observation.argmax())
        mask = env.action_mask()
        assert mask[start] == 0.0
        for action in range(multiplier_compatibility.num_rare_nets):
            if mask[action] == 1.0:
                assert multiplier_compatibility.compatible(start, action)

    def test_no_masking_allows_everything(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, masking=False)
        env.reset()
        assert env.action_mask().sum() == multiplier_compatibility.num_rare_nets

    def test_episode_ends_at_horizon(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, episode_length=3, masking=False)
        env.reset()
        done_flags = [env.step(0).done for _ in range(3)]
        assert done_flags[-1]

    def test_end_of_episode_reward_only_at_end(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, reward_mode="end_of_episode",
                            episode_length=4, masking=False)
        env.reset()
        rewards = []
        done = False
        while not done:
            mask = env.action_mask()
            result = env.step(int(mask.argmax()))
            rewards.append(result.reward)
            done = result.done
        assert all(reward == 0.0 for reward in rewards[:-1])
        assert rewards[-1] > 0.0

    def test_final_info_reports_selected_nets(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, episode_length=2, masking=False)
        env.reset()
        env.step(0)
        result = env.step(1)
        assert result.done
        assert result.info["size"] == len(result.info["selected_indices"])
        assert len(result.info["selected_nets"]) == result.info["size"]

    def test_exact_transition_keeps_sets_satisfiable(self, multiplier_compatibility):
        env = self.make_env(multiplier_compatibility, exact_set_reward=True,
                            episode_length=12)
        env.reset()
        done = False
        while not done:
            mask = env.action_mask()
            result = env.step(int(mask.argmax()))
            done = result.done
        selected = result.info["selected_indices"]
        assert multiplier_compatibility.set_is_satisfiable(selected)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_masking_theorem(self, multiplier_compatibility, seed):
        """Theorem 3.1: any state reachable without masking is reachable with it.

        Run an unmasked episode; replay the accepted actions in a masked
        environment seeded identically and check the masked agent reaches a
        superset-or-equal state.
        """
        unmasked = self.make_env(multiplier_compatibility, masking=False, seed=seed,
                                 episode_length=8)
        masked = self.make_env(multiplier_compatibility, masking=True, seed=seed,
                               episode_length=8)
        unmasked.reset()
        masked.reset()
        rng = np.random.default_rng(seed)
        final_unmasked = None
        for _ in range(8):
            action = int(rng.integers(multiplier_compatibility.num_rare_nets))
            result = unmasked.step(action)
            final_unmasked = result.observation
            if masked.action_mask()[action] == 1.0:
                masked.step(action)
        unmasked_state = set(np.nonzero(final_unmasked)[0])
        masked_state = set(np.nonzero(masked._observation())[0])
        assert unmasked_state <= masked_state | unmasked_state  # masked loses nothing it was offered


class TestAgentAndPatterns:
    def test_agent_collects_distinct_sets(self, multiplier_compatibility, tiny_config):
        agent = DeterrentAgent(multiplier_compatibility, tiny_config)
        result = agent.train()
        assert result.summary.total_episodes > 0
        assert result.distinct_sets
        assert result.max_compatible_set_size >= 1
        assert len(result.largest_sets(3)) <= 3

    def test_largest_sets_sorted_by_size(self, multiplier_compatibility, tiny_config):
        agent = DeterrentAgent(multiplier_compatibility, tiny_config)
        result = agent.train()
        sizes = [len(s) for s in result.largest_sets(5)]
        assert sizes == sorted(sizes, reverse=True)

    def test_generate_patterns_respects_sets(self, multiplier_compatibility):
        sets = [frozenset({0}), frozenset({1})]
        pattern_set = generate_patterns(multiplier_compatibility, sets)
        assert len(pattern_set) == 2
        for row, indices in enumerate(sets):
            assignment = dict(zip(pattern_set.sources, pattern_set.patterns[row]))
            simulated = simulate_pattern(multiplier_compatibility.netlist, assignment)
            for index in indices:
                rare = multiplier_compatibility.rare_nets[index]
                assert simulated[rare.net] == rare.rare_value

    def test_pattern_set_container_operations(self, c17):
        empty = PatternSet.empty(c17, technique="x")
        assert len(empty) == 0
        combined = empty.concatenated(
            PatternSet.from_assignments(c17, [{net: 1 for net in c17.inputs}])
        )
        assert len(combined) == 1
        truncated = combined.truncated(0)
        assert len(truncated) == 0

    def test_pattern_set_width_checked(self, c17):
        with pytest.raises(ValueError):
            PatternSet(sources=c17.combinational_sources(),
                       patterns=np.zeros((1, 2), dtype=np.uint8))

    def test_concatenation_requires_same_sources(self, c17, small_multiplier):
        a = PatternSet.empty(c17)
        b = PatternSet.empty(small_multiplier)
        with pytest.raises(ValueError):
            a.concatenated(b)


class TestPipeline:
    def test_end_to_end_run(self, small_multiplier, tiny_config):
        pipeline = DeterrentPipeline(tiny_config.with_overrides(rareness_threshold=0.2))
        result = pipeline.run(small_multiplier)
        assert result.rare_nets
        assert result.test_length > 0
        assert result.max_compatible_set_size >= 1
        assert set(result.timings) == {
            "compile", "rare_net_extraction", "compatibility", "training",
            "pattern_generation",
        }

    def test_pipeline_patterns_activate_their_sets(self, small_multiplier, tiny_config):
        pipeline = DeterrentPipeline(tiny_config.with_overrides(rareness_threshold=0.2))
        result = pipeline.run(small_multiplier)
        sizes = result.pattern_set.metadata["set_sizes"]
        assert len(sizes) == result.test_length
        assert all(size >= 1 for size in sizes)

    def test_pipeline_rejects_circuit_without_rare_nets(self, c17, tiny_config):
        pipeline = DeterrentPipeline(tiny_config)
        with pytest.raises(ValueError, match="no rare nets"):
            pipeline.run(c17)

    def test_pipeline_accepts_precomputed_offline_phase(
        self, small_multiplier, multiplier_rare_nets, multiplier_compatibility, tiny_config
    ):
        pipeline = DeterrentPipeline(tiny_config.with_overrides(rareness_threshold=0.2))
        result = pipeline.run(
            small_multiplier,
            rare_nets=multiplier_rare_nets,
            compatibility=multiplier_compatibility,
        )
        assert result.compatibility is multiplier_compatibility
