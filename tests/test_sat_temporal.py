"""The temporal SAT subsystem: time-frame expansion and trigger justification.

Differential coverage for the unrolled transition relation:

- a model of the unrolled CNF must agree bit-for-bit with the compiled
  multi-cycle engine under the same input sequence (the encoding *is* the
  machine);
- every :class:`SequentialJustifier` witness must fire its trigger when
  replayed through :class:`CompiledSequentialNetlist` **and** through the
  infected-netlist ground-truth oracle;
- crafted unreachable triggers must be UNSAT at any depth even though the
  full-scan (single-cycle) view calls them satisfiable;
- incremental depth extension must answer exactly like a fresh unroll.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.gates import GateType
from repro.circuits.library import load_benchmark
from repro.circuits.netlist import Netlist
from repro.core.patterns import SequenceSet
from repro.sat.justify import Justifier
from repro.sat.temporal import (
    SequenceWitness,
    SequentialJustifier,
    replay_fire_cycles,
    temporal_fire_cycles,
)
from repro.sat.unroll import TimeFrameExpansion
from repro.circuits.scan import ensure_combinational
from repro.simulation.compiled import compile_sequential_netlist
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.evaluation import (
    sequence_ground_truth_coverage,
    sequence_trigger_coverage,
)
from repro.trojan.insertion import sample_sequential_trojans
from repro.trojan.model import SequentialTrigger, SequentialTrojan, TriggerCondition


@pytest.fixture(scope="module")
def controller():
    """The smallest sequential library benchmark, flip-flops intact."""
    return load_benchmark("s13207_like", combinational_view=False)


def toy_netlist() -> Netlist:
    """input a -> DFF q; mix = a AND q: mix=1 needs a=1 in two adjacent cycles."""
    netlist = Netlist("toy")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_flip_flop("q", "a")
    netlist.add_gate("mix", GateType.AND, ("a", "q"))
    netlist.add_gate("obs", GateType.OR, ("mix", "b"))
    netlist.add_output("obs")
    return netlist


def unreachable_netlist() -> Netlist:
    """Two flip-flops always loaded with complementary values.

    ``both = fa AND fb`` can never be 1 on any sequence from reset (the
    registers start at 0 and are complementary from cycle 1 on), yet the
    full-scan view treats ``fa``/``fb`` as free pseudo inputs and calls the
    condition satisfiable — exactly the gap the unrolled encoding closes.
    """
    netlist = Netlist("unreach")
    netlist.add_input("x")
    netlist.add_gate("nx", GateType.NOT, ("x",))
    netlist.add_flip_flop("fa", "x")
    netlist.add_flip_flop("fb", "nx")
    netlist.add_gate("both", GateType.AND, ("fa", "fb"))
    netlist.add_output("both")
    return netlist


def mix_trigger(mode: str, count: int) -> SequentialTrigger:
    return SequentialTrigger(
        condition=TriggerCondition((("mix", 1),)), mode=mode, count=count
    )


class TestTimeFrameExpansion:
    def test_rejects_combinational(self):
        from repro.circuits import generators

        with pytest.raises(ValueError, match="sequential"):
            TimeFrameExpansion(generators.c17())

    def test_validates_frame_count_and_initial_state(self):
        netlist = toy_netlist()
        with pytest.raises(ValueError):
            TimeFrameExpansion(netlist, num_frames=0)
        with pytest.raises(KeyError):
            TimeFrameExpansion(netlist, initial_state={"ghost": 1})
        with pytest.raises(ValueError):
            TimeFrameExpansion(netlist, initial_state={"q": 2})
        expansion = TimeFrameExpansion(netlist, num_frames=2)
        with pytest.raises(ValueError):
            expansion.extend_to(0)
        with pytest.raises(IndexError):
            expansion.variable("q", 2)
        with pytest.raises(KeyError):
            expansion.variable("ghost", 0)

    def test_reset_state_is_pinned_at_frame_zero(self):
        expansion = TimeFrameExpansion(toy_netlist(), num_frames=3)
        assert not expansion.solve([expansion.literal("q", 1, 0)]).satisfiable
        assert expansion.solve([expansion.literal("q", 0, 0)]).satisfiable
        # Later frames are reachable at either value (q copies input a).
        assert expansion.solve([expansion.literal("q", 1, 1)]).satisfiable

    def test_initial_state_override(self):
        expansion = TimeFrameExpansion(
            toy_netlist(), num_frames=2, initial_state={"q": 1}
        )
        assert expansion.solve([expansion.literal("q", 1, 0)]).satisfiable
        assert not expansion.solve([expansion.literal("q", 0, 0)]).satisfiable
        # mix = a AND q can now hold at cycle 0.
        assert expansion.solve([expansion.literal("mix", 1, 0)]).satisfiable

    def test_state_transfer_between_frames(self):
        expansion = TimeFrameExpansion(toy_netlist(), num_frames=3)
        # q at frame t+1 must equal input a at frame t.
        assert not expansion.solve(
            [expansion.literal("a", 1, 0), expansion.literal("q", 0, 1)]
        ).satisfiable
        assert not expansion.solve(
            [expansion.literal("a", 0, 1), expansion.literal("q", 1, 2)]
        ).satisfiable

    @pytest.mark.parametrize("design", ["toy", "controller"])
    def test_model_matches_compiled_engine(self, design, controller):
        """Assuming a simulated input sequence must reproduce every net value."""
        netlist = toy_netlist() if design == "toy" else controller
        frames = 5
        expansion = TimeFrameExpansion(netlist, num_frames=frames)
        compiled = compile_sequential_netlist(netlist)
        rng = np.random.default_rng(7)
        sequence = rng.integers(0, 2, size=(1, frames, len(netlist.inputs)), dtype=np.uint8)
        tensor, _ = compiled.run_sequences(sequence)
        one = np.uint64(1)
        assumptions = [
            expansion.literal(net, int(tensor[t, compiled.index_of(net), 0] & one), t)
            for t in range(frames)
            for net in netlist.inputs
        ]
        result = expansion.solve(assumptions)
        assert result.satisfiable
        for t in range(frames):
            for net in compiled.net_names:
                simulated = int(tensor[t, compiled.index_of(net), 0] & one)
                modelled = int(result.model.get(expansion.variable(net, t), False))
                assert simulated == modelled, (net, t)

    def test_decode_inputs_round_trips_through_the_engine(self):
        netlist = toy_netlist()
        expansion = TimeFrameExpansion(netlist, num_frames=4)
        result = expansion.solve([expansion.literal("mix", 1, 3)])
        assert result.satisfiable
        sequence = expansion.decode_inputs(result.model)
        assert sequence.shape == (4, 2)
        from repro.sat.temporal import condition_bits

        bits = condition_bits(netlist, TriggerCondition((("mix", 1),)), sequence)
        assert bool(bits[3])

    def test_incremental_extension_matches_fresh_unroll(self, controller):
        rare = extract_rare_nets(
            controller, threshold=0.1, num_patterns=256, seed=0, cycles=6
        )
        probes = rare[:6] + rare[-6:]
        grown = TimeFrameExpansion(controller, num_frames=2)
        for depth in (3, 6):
            grown.extend_to(depth)
            fresh = TimeFrameExpansion(controller, num_frames=depth)
            for item in probes:
                verdicts = set()
                for expansion in (grown, fresh):
                    verdicts.add(
                        any(
                            expansion.solve(
                                [expansion.literal(item.net, item.rare_value, t)]
                            ).satisfiable
                            for t in range(depth)
                        )
                    )
                assert len(verdicts) == 1, (item.net, depth)

    def test_query_counter(self):
        expansion = TimeFrameExpansion(toy_netlist(), num_frames=2)
        before = expansion.num_queries
        expansion.solve()
        expansion.solve([expansion.literal("a", 1, 0)])
        assert expansion.num_queries == before + 2


class TestTemporalFireCycles:
    def test_consecutive_matches_hand_computation(self):
        bits = np.array([1, 1, 0, 1, 1, 1], dtype=bool)
        assert temporal_fire_cycles("consecutive", 2, bits) == [1, 4, 5]
        assert temporal_fire_cycles("consecutive", 3, bits) == [5]
        assert temporal_fire_cycles("consecutive", 4, bits) == []

    def test_cumulative_matches_hand_computation(self):
        bits = np.array([1, 0, 1, 0, 1], dtype=bool)
        assert temporal_fire_cycles("cumulative", 2, bits) == [2, 4]
        assert temporal_fire_cycles("cumulative", 3, bits) == [4]
        assert temporal_fire_cycles("cumulative", 4, bits) == []

    def test_count_one_fires_on_every_activation(self):
        bits = np.array([0, 1, 1], dtype=bool)
        for mode in ("consecutive", "cumulative"):
            assert temporal_fire_cycles(mode, 1, bits) == [1, 2]


class TestSequentialJustifier:
    def test_toy_satisfiability_matrix(self):
        """mix can hold at cycles 1..3 of a 4-cycle horizon, never at cycle 0."""
        justifier = SequentialJustifier(toy_netlist(), cycles=4)
        expectations = {
            ("consecutive", 2): True,
            ("consecutive", 3): True,
            ("consecutive", 4): False,  # would need mix at cycle 0
            ("cumulative", 3): True,
            ("cumulative", 4): False,
            ("cumulative", 5): False,  # count exceeds the horizon
        }
        for (mode, count), expected in expectations.items():
            assert justifier.is_satisfiable(mix_trigger(mode, count)) is expected, (
                mode, count,
            )

    def test_witness_replays_through_the_compiled_engine(self):
        netlist = toy_netlist()
        justifier = SequentialJustifier(netlist, cycles=5)
        for mode, count in [("consecutive", 2), ("consecutive", 3),
                            ("cumulative", 2), ("cumulative", 4)]:
            trigger = mix_trigger(mode, count)
            witness = justifier.witness(trigger)
            assert isinstance(witness, SequenceWitness)
            fires = replay_fire_cycles(netlist, trigger, witness.sequence)
            assert fires and fires[0] == witness.fire_cycle, (mode, count)

    def test_witness_detected_by_ground_truth_oracle(self):
        """The witness fires the physically inserted Trojan hardware too."""
        netlist = toy_netlist()
        justifier = SequentialJustifier(netlist, cycles=5)
        for mode, count in [("consecutive", 3), ("cumulative", 3)]:
            trigger = mix_trigger(mode, count)
            witness = justifier.witness(trigger)
            trojan = SequentialTrojan(
                trigger=trigger, payload_output="obs", name=f"{mode}{count}"
            )
            workload = SequenceSet(
                inputs=witness.inputs, sequences=witness.sequence[None, :, :]
            )
            batched = sequence_trigger_coverage(netlist, [trojan], workload)
            oracle = sequence_ground_truth_coverage(netlist, [trojan], workload)
            assert batched.detected == [True]
            assert oracle.detected == [True]

    def test_unreachable_trigger_unsat_despite_scan_view_sat(self):
        """UNSAT agreement: the crafted trigger needs an unreachable state."""
        netlist = unreachable_netlist()
        condition = TriggerCondition((("both", 1),))
        scan_view = Justifier(ensure_combinational(netlist))
        assert scan_view.is_satisfiable(condition.as_assignment())
        justifier = SequentialJustifier(netlist, cycles=8)
        for mode in ("consecutive", "cumulative"):
            trigger = SequentialTrigger(condition=condition, mode=mode, count=1)
            assert not justifier.is_satisfiable(trigger)
            assert justifier.witness(trigger) is None

    def test_incremental_extension_matches_fresh_unroll(self):
        netlist = toy_netlist()
        grown = SequentialJustifier(netlist, cycles=2)
        trigger = mix_trigger("consecutive", 3)
        assert not grown.is_satisfiable(trigger)  # horizon too shallow
        grown.extend_to(5)
        fresh = SequentialJustifier(netlist, cycles=5)
        assert grown.is_satisfiable(trigger) and fresh.is_satisfiable(trigger)
        for justifier in (grown, fresh):
            witness = justifier.witness(trigger)
            fires = replay_fire_cycles(netlist, trigger, witness.sequence)
            assert fires and fires[0] == witness.fire_cycle

    def test_shallow_horizon_answers_like_a_shallow_unroll(self):
        """Querying cycles=N on a deeper justifier equals a fresh N-cycle one."""
        netlist = toy_netlist()
        deep = SequentialJustifier(netlist, cycles=6)
        shallow = SequentialJustifier(netlist, cycles=3)
        for mode, count in [("consecutive", 2), ("cumulative", 3), ("cumulative", 4)]:
            trigger = mix_trigger(mode, count)
            assert deep.is_satisfiable(trigger, cycles=3) == shallow.is_satisfiable(
                trigger
            ), (mode, count)

    def test_count_one_degenerates_to_single_cycle_reachability(self):
        justifier = SequentialJustifier(toy_netlist(), cycles=4)
        consecutive = justifier.witness(mix_trigger("consecutive", 1))
        cumulative = justifier.witness(mix_trigger("cumulative", 1))
        # mix requires q=1, i.e. a=1 the cycle before: never fires at cycle 0.
        assert consecutive.fire_cycle >= 1
        assert cumulative.fire_cycle >= 1

    def test_preferred_values_keep_witnesses_valid(self):
        netlist = toy_netlist()
        justifier = SequentialJustifier(netlist, cycles=4)
        justifier.set_preferred_values({"mix": 1, "b": 0})
        trigger = mix_trigger("cumulative", 2)
        witness = justifier.witness(trigger)
        fires = replay_fire_cycles(netlist, trigger, witness.sequence)
        assert fires and fires[0] == witness.fire_cycle
        with pytest.raises(KeyError):
            justifier.set_preferred_values({"ghost": 1})

    def test_library_benchmark_witness_is_covered_by_the_evaluator(self, controller):
        """A justified sampled Trojan is detected by the batched evaluator."""
        cycles = 4
        rare = extract_rare_nets(
            controller, threshold=0.1, num_patterns=512, seed=0, cycles=cycles
        )
        trojans = sample_sequential_trojans(
            controller, rare, num_trojans=12, trigger_width=3,
            mode="cumulative", count=2, seed=1,
        )
        justifier = SequentialJustifier(controller, cycles=cycles)
        witnessed = []
        for trojan in trojans:
            witness = justifier.witness(trojan.trigger)
            if witness is not None:
                witnessed.append((trojan, witness))
        assert witnessed, "no sampled trigger is temporally reachable at depth 4"
        for trojan, witness in witnessed:
            workload = SequenceSet(
                inputs=witness.inputs, sequences=witness.sequence[None, :, :]
            )
            coverage = sequence_trigger_coverage(controller, [trojan], workload)
            assert coverage.detected == [True]
