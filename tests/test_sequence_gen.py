"""SAT-guided sequence generation and the sharded SAT work satellites.

Covers the sequential pattern pipeline (pre-filter, greedy joint sets,
replay-verified witnesses, the ``sequential_detect`` acceptance property)
and the sharded counterparts of the serial SAT stages (activatability
pre-filter, per-set pattern witnesses, per-set sequence witnesses) with
their ``n_jobs=1`` fallback contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import load_benchmark
from repro.core.compatibility import compute_compatibility
from repro.core.patterns import SequenceSet, generate_patterns
from repro.core.sequence_gen import (
    analyze_sequential_compatibility,
    generate_sequences,
    greedy_compatible_sets,
    sequence_witness_with_repair,
)
from repro.runner.parallel import (
    make_item_shards,
    parallel_activatability,
    serial_activatability,
)
from repro.sat.justify import Justifier
from repro.sat.temporal import replay_fire_cycles
from repro.simulation.logic_sim import simulate_pattern
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.evaluation import sequence_trigger_coverage
from repro.trojan.insertion import sample_sequential_trojans
from repro.trojan.model import SequentialTrigger, TriggerCondition

CYCLES = 4


@pytest.fixture(scope="module")
def controller():
    return load_benchmark("s13207_like", combinational_view=False)


@pytest.fixture(scope="module")
def state_rare(controller):
    return extract_rare_nets(
        controller, threshold=0.1, num_patterns=512, seed=0, cycles=CYCLES
    )


@pytest.fixture(scope="module")
def compatibility(controller, state_rare):
    return analyze_sequential_compatibility(
        controller, state_rare, CYCLES, mode="cumulative", count=2
    )


class TestSequentialCompatibility:
    def test_prefilter_partitions_rare_nets(self, compatibility, state_rare):
        assert compatibility.num_rare_nets > 0
        assert compatibility.unreachable, "state-dependent extraction should " \
            "produce provably-unreachable nets (that is the workload's point)"
        assert (
            len(compatibility.rare_nets) + len(compatibility.unreachable)
            == len(state_rare)
        )

    def test_unreachable_nets_really_are(self, compatibility):
        justifier = compatibility.justifier
        for rare in compatibility.unreachable[:5]:
            trigger = SequentialTrigger(
                condition=TriggerCondition(((rare.net, rare.rare_value),)),
                mode=compatibility.mode,
                count=compatibility.count,
            )
            assert not justifier.is_satisfiable(trigger, compatibility.cycles)

    def test_rejects_combinational(self):
        netlist = load_benchmark("c2670_like")
        with pytest.raises(ValueError, match="flip-flops"):
            analyze_sequential_compatibility(netlist, [], CYCLES)

    def test_greedy_sets_are_distinct_and_jointly_satisfiable(self, compatibility):
        sets = greedy_compatible_sets(compatibility, num_sets=6, seed=5)
        assert sets
        assert len({frozenset(indices) for indices in sets}) == len(sets)
        for indices in sets:
            assert compatibility.set_is_satisfiable(list(indices))

    def test_max_set_size_is_honoured(self, compatibility):
        sets = greedy_compatible_sets(compatibility, num_sets=3, seed=5, max_set_size=2)
        assert sets
        assert all(len(indices) <= 2 for indices in sets)

    def test_witness_with_repair_handles_unsatisfiable_supersets(self, compatibility):
        """A hand-built set mixing incompatible nets is repaired, not dropped."""
        justifier = compatibility.justifier
        ordered = compatibility.ordered_requirements(
            list(range(compatibility.num_rare_nets))
        )
        sequence, fire_cycle, realized = sequence_witness_with_repair(
            justifier, ordered, compatibility.mode, compatibility.count,
            compatibility.cycles,
        )
        assert sequence is not None
        assert 0 < realized <= len(ordered)
        assert fire_cycle >= 0


class TestGenerateSequences:
    def test_sequences_replay_and_beat_random_at_equal_budget(
        self, controller, state_rare
    ):
        """The PR's acceptance property on a tiny-profile cell."""
        mode, count, budget = "cumulative", 2, 16
        trojans = sample_sequential_trojans(
            controller, state_rare, num_trojans=12, trigger_width=3,
            mode=mode, count=count, seed=1,
        )
        guided = generate_sequences(
            controller, state_rare, CYCLES, mode=mode, count=count,
            num_sequences=budget, seed=3,
        )
        assert 0 < len(guided) <= budget
        # Every emitted witness replays: the full (unrepaired) set fires at
        # the claimed cycle on the compiled engine.
        for position, ordered in enumerate(guided.metadata["sets"]):
            if guided.metadata["set_sizes"][position] != len(ordered):
                continue  # repaired set: only a subset is guaranteed
            trigger = SequentialTrigger(
                condition=TriggerCondition(tuple(ordered)), mode=mode, count=count
            )
            fires = replay_fire_cycles(controller, trigger, guided.sequences[position])
            assert fires
            assert fires[0] == guided.metadata["fire_cycles"][position]
        random_sequences = SequenceSet.random(
            controller, num_sequences=budget, cycles=CYCLES, seed=2
        )
        sat_coverage = sequence_trigger_coverage(controller, trojans, guided)
        random_coverage = sequence_trigger_coverage(
            controller, trojans, random_sequences
        )
        assert sat_coverage.num_detected > random_coverage.num_detected

    def test_generation_is_deterministic(self, controller, state_rare):
        first = generate_sequences(
            controller, state_rare, CYCLES, mode="consecutive", count=2,
            num_sequences=4, seed=9,
        )
        second = generate_sequences(
            controller, state_rare, CYCLES, mode="consecutive", count=2,
            num_sequences=4, seed=9,
        )
        assert np.array_equal(first.sequences, second.sequences)
        assert first.metadata["sets"] == second.metadata["sets"]

    def test_empty_when_nothing_is_reachable(self):
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Netlist

        netlist = Netlist("unreach")
        netlist.add_input("x")
        netlist.add_gate("nx", GateType.NOT, ("x",))
        netlist.add_flip_flop("fa", "x")
        netlist.add_flip_flop("fb", "nx")
        netlist.add_gate("both", GateType.AND, ("fa", "fb"))
        netlist.add_output("both")
        rare = extract_rare_nets(
            netlist, threshold=0.1, num_patterns=256, seed=0, cycles=3
        )
        target = [item for item in rare if item.net == "both"]
        assert target, "the AND of complementary registers must be rare"
        produced = generate_sequences(netlist, target, 3, num_sequences=4, seed=0)
        assert len(produced) == 0
        assert produced.metadata["num_activatable"] == 0

    def test_parallel_sequence_witnesses_respect_initial_state(self):
        """Workers must unroll from the caller's state, not silently from reset."""
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Netlist
        from repro.runner.parallel import parallel_sequence_witnesses

        netlist = Netlist("toy")
        netlist.add_input("a")
        netlist.add_flip_flop("q", "a")
        netlist.add_gate("mix", GateType.AND, ("a", "q"))
        netlist.add_output("mix")
        # consecutive-2 within 2 cycles needs mix at cycles 0 AND 1: possible
        # only when the machine starts with q=1, never from reset.
        ordered_sets = [(("mix", 1),), (("mix", 1),)]
        trigger = SequentialTrigger(
            condition=TriggerCondition((("mix", 1),)), mode="consecutive", count=2
        )
        seeded = parallel_sequence_witnesses(
            netlist, ordered_sets, 2, "consecutive", 2, n_jobs=2,
            initial_state={"q": 1},
        )
        for sequence, fire_cycle, realized in seeded:
            assert sequence is not None and realized == 1
            fires = replay_fire_cycles(
                netlist, trigger, sequence, initial_state={"q": 1}
            )
            assert fires and fires[0] == fire_cycle == 1
        from_reset = parallel_sequence_witnesses(
            netlist, ordered_sets, 2, "consecutive", 2, n_jobs=2
        )
        assert all(sequence is None for sequence, _, _ in from_reset)

    def test_sharded_generation_produces_valid_witnesses(self, controller, state_rare):
        guided = generate_sequences(
            controller, state_rare, CYCLES, mode="cumulative", count=2,
            num_sequences=6, seed=3, n_jobs=2,
        )
        assert len(guided) > 0
        for position, ordered in enumerate(guided.metadata["sets"]):
            if guided.metadata["set_sizes"][position] != len(ordered):
                continue
            trigger = SequentialTrigger(
                condition=TriggerCondition(tuple(ordered)),
                mode="cumulative", count=2,
            )
            fires = replay_fire_cycles(controller, trigger, guided.sequences[position])
            assert fires and fires[0] == guided.metadata["fire_cycles"][position]


@pytest.fixture(scope="module")
def combinational():
    return load_benchmark("c2670_like")


@pytest.fixture(scope="module")
def combinational_rare(combinational):
    return extract_rare_nets(combinational, threshold=0.1, num_patterns=1024, seed=0)


class TestItemShards:
    def test_shards_cover_every_item_exactly_once(self):
        shards = make_item_shards(23, 5, base_seed=11)
        items = [item for shard in shards for item in shard.items]
        assert sorted(items) == list(range(23))

    def test_seed_contract(self):
        shards = make_item_shards(10, 3, base_seed=100)
        for shard in shards:
            assert shard.seed == 100 + 7919 * shard.index

    def test_empty_and_invalid(self):
        assert make_item_shards(0, 4) == []
        with pytest.raises(ValueError):
            make_item_shards(4, 0)


class TestShardedActivatability:
    def test_matches_serial_bit_for_bit(self, combinational, combinational_rare):
        requirements = [
            (rare.net, rare.rare_value) for rare in combinational_rare[:16]
        ]
        serial = serial_activatability(Justifier(combinational), requirements)
        sharded = parallel_activatability(combinational, requirements, n_jobs=2)
        assert serial == sharded

    def test_compatibility_prefilter_identical_across_job_counts(
        self, combinational, combinational_rare
    ):
        rare = combinational_rare[:12]
        serial = compute_compatibility(combinational, rare, n_jobs=1, cache=None)
        sharded = compute_compatibility(combinational, rare, n_jobs=2, cache=None)
        assert serial.rare_nets == sharded.rare_nets
        assert serial.unsatisfiable == sharded.unsatisfiable
        assert np.array_equal(serial.matrix, sharded.matrix)


class TestShardedPatternWitnesses:
    def test_sharded_witnesses_satisfy_their_sets(self, combinational, combinational_rare):
        analysis = compute_compatibility(
            combinational, combinational_rare[:12], n_jobs=1, cache=None
        )
        sets = [frozenset({index}) for index in range(min(6, analysis.num_rare_nets))]
        patterns = generate_patterns(analysis, sets, technique="test", n_jobs=2)
        assert len(patterns) == len(sets)
        for row, indices in zip(patterns.patterns, sets):
            assignment = dict(zip(patterns.sources, (int(bit) for bit in row)))
            simulated = simulate_pattern(analysis.netlist, assignment)
            for net, value in analysis.requirements(indices).items():
                assert simulated[net] == value

    def test_serial_path_is_unchanged_reference(self, combinational, combinational_rare):
        analysis = compute_compatibility(
            combinational, combinational_rare[:12], n_jobs=1, cache=None
        )
        sets = [frozenset({0}), frozenset({1, 2})]
        first = generate_patterns(analysis, sets, technique="test", n_jobs=1)
        # Witness bits may differ across solver states, but the serial path
        # on one analysis is deterministic call over call.
        analysis_again = compute_compatibility(
            combinational, combinational_rare[:12], n_jobs=1, cache=None
        )
        second = generate_patterns(analysis_again, sets, technique="test", n_jobs=1)
        assert np.array_equal(first.patterns, second.patterns)
        assert first.metadata["set_sizes"] == second.metadata["set_sizes"]
