"""Tests for the Trojan model, insertion transform, and coverage evaluation."""

import numpy as np
import pytest

from repro.circuits.validate import validate_netlist
from repro.core.patterns import PatternSet
from repro.simulation.logic_sim import BitParallelSimulator, simulate_pattern
from repro.trojan.evaluation import coverage_curve, trigger_coverage
from repro.trojan.insertion import insert_trojan, sample_trojans
from repro.trojan.model import Trojan, TriggerCondition


class TestTriggerCondition:
    def test_width_and_nets(self):
        trigger = TriggerCondition((("a", 1), ("b", 0)))
        assert trigger.width == 2
        assert trigger.nets == ("a", "b")
        assert trigger.as_assignment() == {"a": 1, "b": 0}

    def test_empty_trigger_rejected(self):
        with pytest.raises(ValueError):
            TriggerCondition(())

    def test_duplicate_net_rejected(self):
        with pytest.raises(ValueError):
            TriggerCondition((("a", 1), ("a", 0)))

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            TriggerCondition((("a", 2),))

    def test_from_rare_nets(self, multiplier_rare_nets):
        trigger = TriggerCondition.from_rare_nets(multiplier_rare_nets[:3])
        assert trigger.width == 3


class TestSampling:
    def test_sampled_triggers_are_valid(self, small_multiplier, multiplier_compatibility):
        trojans = sample_trojans(
            small_multiplier, multiplier_compatibility.rare_nets,
            num_trojans=10, trigger_width=3, seed=0,
            justifier=multiplier_compatibility.justifier,
        )
        assert trojans
        for trojan in trojans:
            assert trojan.width == 3
            assert multiplier_compatibility.justifier.is_satisfiable(
                trojan.trigger.as_assignment()
            )

    def test_triggers_are_distinct(self, small_multiplier, multiplier_compatibility):
        trojans = sample_trojans(
            small_multiplier, multiplier_compatibility.rare_nets,
            num_trojans=12, trigger_width=2, seed=1,
            justifier=multiplier_compatibility.justifier,
        )
        keys = {frozenset(t.trigger.nets) for t in trojans}
        assert len(keys) == len(trojans)

    def test_width_larger_than_population_returns_empty(self, small_multiplier):
        assert sample_trojans(small_multiplier, [], num_trojans=5, trigger_width=4) == []

    def test_invalid_width_rejected(self, small_multiplier, multiplier_rare_nets):
        with pytest.raises(ValueError):
            sample_trojans(small_multiplier, multiplier_rare_nets, trigger_width=0)

    def test_sampling_deterministic_for_seed(self, small_multiplier, multiplier_compatibility):
        first = sample_trojans(small_multiplier, multiplier_compatibility.rare_nets,
                               num_trojans=5, trigger_width=2, seed=7,
                               justifier=multiplier_compatibility.justifier)
        second = sample_trojans(small_multiplier, multiplier_compatibility.rare_nets,
                                num_trojans=5, trigger_width=2, seed=7,
                                justifier=multiplier_compatibility.justifier)
        assert [t.trigger.nets for t in first] == [t.trigger.nets for t in second]


class TestInsertion:
    def _build_trojan(self, compatibility, width=2):
        rare = compatibility.rare_nets[:width]
        trigger = TriggerCondition.from_rare_nets(rare)
        payload = compatibility.netlist.outputs[0]
        return Trojan(trigger=trigger, payload_output=payload, name="ht_test")

    def test_infected_netlist_validates(self, small_multiplier, multiplier_compatibility):
        trojan = self._build_trojan(multiplier_compatibility)
        infected = insert_trojan(small_multiplier, trojan)
        assert validate_netlist(infected).ok
        assert infected.num_gates > small_multiplier.num_gates

    def test_payload_flips_only_under_trigger(self, small_multiplier, multiplier_compatibility):
        trojan = self._build_trojan(multiplier_compatibility)
        infected = insert_trojan(small_multiplier, trojan)
        justifier = multiplier_compatibility.justifier

        triggering = justifier.witness(trojan.trigger.as_assignment())
        assert triggering is not None
        golden = simulate_pattern(small_multiplier, triggering)
        corrupted = simulate_pattern(infected, triggering)
        assert corrupted[trojan.payload_output] != golden[trojan.payload_output]

        # A pattern that violates the trigger must leave every output intact.
        first_net, first_value = trojan.trigger.requirements[0]
        benign = justifier.witness({first_net: 1 - first_value})
        assert benign is not None
        golden = simulate_pattern(small_multiplier, benign)
        clean = simulate_pattern(infected, benign)
        for output in small_multiplier.outputs:
            assert clean[output] == golden[output]

    def test_payload_must_be_gate_driven(self, small_multiplier, multiplier_compatibility):
        rare = multiplier_compatibility.rare_nets[0]
        trigger = TriggerCondition(((rare.net, rare.rare_value),))
        trojan = Trojan(trigger=trigger, payload_output=small_multiplier.inputs[0])
        with pytest.raises(ValueError):
            insert_trojan(small_multiplier, trojan)

    def test_single_net_trigger_supported(self, small_multiplier, multiplier_compatibility):
        rare = multiplier_compatibility.rare_nets[0]
        trigger = TriggerCondition(((rare.net, rare.rare_value),))
        trojan = Trojan(trigger=trigger, payload_output=small_multiplier.outputs[0])
        infected = insert_trojan(small_multiplier, trojan)
        assert validate_netlist(infected).ok


class TestCoverage:
    def _trojans(self, compatibility, count=8, width=2):
        return sample_trojans(
            compatibility.netlist, compatibility.rare_nets,
            num_trojans=count, trigger_width=width, seed=3,
            justifier=compatibility.justifier,
        )

    def test_empty_pattern_set_covers_nothing(self, small_multiplier, multiplier_compatibility):
        trojans = self._trojans(multiplier_compatibility)
        result = trigger_coverage(small_multiplier, trojans, PatternSet.empty(small_multiplier))
        assert result.coverage == 0.0
        assert result.num_detected == 0

    def test_targeted_patterns_achieve_full_coverage(self, small_multiplier, multiplier_compatibility):
        trojans = self._trojans(multiplier_compatibility)
        justifier = multiplier_compatibility.justifier
        assignments = [justifier.witness(t.trigger.as_assignment()) for t in trojans]
        pattern_set = PatternSet.from_assignments(small_multiplier, assignments, technique="oracle")
        result = trigger_coverage(small_multiplier, trojans, pattern_set)
        assert result.coverage == 1.0
        assert result.coverage_percent == 100.0

    def test_coverage_matches_brute_force(self, small_multiplier, multiplier_compatibility):
        trojans = self._trojans(multiplier_compatibility, count=6)
        rng = np.random.default_rng(0)
        simulator = BitParallelSimulator(small_multiplier)
        patterns = rng.integers(0, 2, size=(64, len(simulator.sources)), dtype=np.uint8)
        pattern_set = PatternSet(sources=simulator.sources, patterns=patterns, technique="rand")
        result = trigger_coverage(small_multiplier, trojans, pattern_set)
        values = simulator.run_patterns(patterns)
        expected = 0
        for trojan in trojans:
            fired = np.ones(64, dtype=bool)
            for net, value in trojan.trigger.requirements:
                fired &= values[net] == value
            expected += int(fired.any())
        assert result.num_detected == expected

    def test_coverage_curve_is_monotone_and_ends_at_total(self, small_multiplier, multiplier_compatibility):
        trojans = self._trojans(multiplier_compatibility)
        justifier = multiplier_compatibility.justifier
        assignments = [justifier.witness(t.trigger.as_assignment()) for t in trojans]
        pattern_set = PatternSet.from_assignments(small_multiplier, assignments)
        curve = coverage_curve(small_multiplier, trojans, pattern_set)
        coverages = [point[1] for point in curve]
        assert coverages == sorted(coverages)
        final = trigger_coverage(small_multiplier, trojans, pattern_set)
        assert coverages[-1] == pytest.approx(final.coverage_percent)

    def test_unknown_trigger_net_raises(self, small_multiplier):
        trigger = TriggerCondition((("not_a_net", 1),))
        trojan = Trojan(trigger=trigger, payload_output=small_multiplier.outputs[0])
        patterns = PatternSet.from_assignments(
            small_multiplier, [{net: 0 for net in small_multiplier.combinational_sources()}]
        )
        with pytest.raises(KeyError):
            trigger_coverage(small_multiplier, [trojan], patterns)

    def test_source_order_mismatch_detected(self, small_multiplier, multiplier_compatibility):
        trojans = self._trojans(multiplier_compatibility, count=2)
        sources = tuple(reversed(small_multiplier.combinational_sources()))
        bad = PatternSet(sources=sources,
                         patterns=np.zeros((1, len(sources)), dtype=np.uint8))
        with pytest.raises(ValueError):
            trigger_coverage(small_multiplier, trojans, bad)
