"""Unit tests for the telemetry layer: tracing, metrics, profiling, CLI view.

Everything here is single-process and fast.  Cross-backend merge parity and
the end-to-end span trees live in ``test_obs_integration.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli, obs
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    absorb_solver_stats,
    iter_solver_stats,
    merged_snapshot,
    payload_to_prometheus,
    percentile_summary,
    prometheus_name,
)
from repro.obs.trace import TraceContext, build_tree, load_spans, orphan_spans


@pytest.fixture
def traced(tmp_path):
    """Telemetry enabled on a throwaway directory, fully undone afterwards."""
    trace_dir = tmp_path / "trace"
    obs.configure(trace_dir, export_env=False)
    try:
        yield trace_dir
    finally:
        obs.trace.flush_spans()  # drain the buffer so it can't leak onward
        obs.disable()
        obs.metrics.reset_registry()
        obs.trace.install_remote_parent(None)


@pytest.fixture(autouse=True)
def _clean_slate():
    yield
    obs.disable()
    obs.metrics.reset_registry()
    obs.trace.install_remote_parent(None)


# ----------------------------------------------------------------------
# Runtime switchboard
# ----------------------------------------------------------------------
class TestRuntime:
    def test_disabled_by_default_in_tests(self):
        assert not obs.enabled()
        assert obs.trace_dir() is None

    def test_configure_enables_and_disable_undoes(self, tmp_path):
        obs.configure(tmp_path / "t", export_env=False)
        assert obs.enabled()
        assert obs.trace_dir() == str(tmp_path / "t")
        assert (tmp_path / "t").is_dir()  # created eagerly
        obs.disable()
        assert not obs.enabled() and obs.trace_dir() is None

    def test_export_env_publishes_the_directory_to_children(self, tmp_path):
        obs.configure(tmp_path / "t", export_env=True)
        assert os.environ[obs.ENV_TRACE_DIR] == str(tmp_path / "t")
        obs.disable()
        assert obs.ENV_TRACE_DIR not in os.environ

    def test_profile_flag_controls_profiling_only(self, tmp_path):
        obs.configure(tmp_path / "t", profile=False, export_env=False)
        assert obs.enabled() and not obs.profiling_enabled()
        assert obs_profile.hot_path("x") is None
        obs.configure(tmp_path / "t", profile=True, export_env=False)
        assert obs.profiling_enabled()

    def test_install_worker_accepts_disabled_submitter(self):
        obs.install_worker(None, None)  # telemetry off on the submitting side
        assert not obs.enabled()

    def test_worker_install_args_ship_dir_and_context(self, traced):
        with obs.trace.span("parent") as parent:
            directory, context = obs.worker_install_args()
            assert directory == str(traced)
            assert context == parent.context().as_dict()


# ----------------------------------------------------------------------
# Trace context propagation
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_dict_roundtrip(self):
        context = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        assert TraceContext.from_dict(context.as_dict()) == context
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"trace_id": 7}) is None

    def test_traceparent_roundtrip(self):
        context = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        header = context.to_traceparent()
        assert header == f"00-{'a' * 32}-{'b' * 16}-01"
        assert TraceContext.from_traceparent(header) == context

    def test_traceparent_rejects_malformed_headers(self):
        assert TraceContext.from_traceparent(None) is None
        assert TraceContext.from_traceparent("") is None
        assert TraceContext.from_traceparent("not-a-header") is None
        assert TraceContext.from_traceparent("00-short-id-01") is None


class TestSpans:
    def test_nested_spans_export_one_connected_tree(self, traced):
        with obs.trace.span("outer", attrs={"k": 1}):
            with obs.trace.span("inner"):
                pass
        obs.trace.flush_spans()
        spans = load_spans(traced)
        assert [record["name"] for record in spans] == ["outer", "inner"]
        roots, children = build_tree(spans)
        assert len(roots) == 1 and roots[0]["name"] == "outer"
        assert children[roots[0]["span_id"]][0]["name"] == "inner"
        assert orphan_spans(spans) == []
        assert roots[0]["attrs"] == {"k": 1}
        assert all(record["dur_s"] >= 0.0 for record in spans)

    def test_disabled_spans_are_noops_and_write_nothing(self, tmp_path):
        with obs.trace.span("ghost") as ghost:
            assert ghost is obs_trace.NOOP_SPAN
            assert ghost.context() is None
            ghost.set_attr("x", 1)  # must not raise
        assert obs.trace.current_context() is None
        assert load_spans(tmp_path) == []

    def test_exception_marks_the_span_status_error(self, traced):
        with pytest.raises(ValueError):
            with obs.trace.span("doomed"):
                raise ValueError("nope")
        obs.trace.flush_spans()
        (record,) = load_spans(traced)
        assert record["status"] == "error"
        assert record["attrs"]["error"] is True

    def test_remote_parent_links_worker_spans_to_the_submitter(self, traced):
        with obs.trace.span("submit") as submit:
            shipped = submit.context().as_dict()
        # "Worker side": a fresh context arrives via the initializer chain.
        obs.trace.install_remote_parent(TraceContext.from_dict(shipped))
        with obs.trace.span("work"):
            pass
        obs.trace.flush_spans()
        spans = load_spans(traced)
        by_name = {record["name"]: record for record in spans}
        assert by_name["work"]["trace_id"] == by_name["submit"]["trace_id"]
        assert by_name["work"]["parent_id"] == by_name["submit"]["span_id"]
        assert len(build_tree(spans)[0]) == 1

    def test_start_span_is_manual_and_not_ambient(self, traced):
        opened = obs.trace.start_span("manual")
        assert obs.trace.current_context() is None  # not on the stack
        opened.end()
        opened.end()  # idempotent: ends exactly once
        obs.trace.flush_spans()
        assert len(load_spans(traced)) == 1

    def test_orphans_are_detected_and_still_rendered_as_roots(self, traced):
        orphan = obs.trace.start_span(
            "orphan", parent=TraceContext(trace_id="f" * 32, span_id="e" * 16)
        )
        orphan.end()
        obs.trace.flush_spans()
        spans = load_spans(traced)
        assert len(orphan_spans(spans)) == 1
        roots, _ = build_tree(spans)  # unexported parent -> visible root
        assert len(roots) == 1

    def test_corrupt_span_lines_are_skipped(self, traced):
        with obs.trace.span("ok"):
            pass
        obs.trace.flush_spans()
        path = traced / f"spans-{os.getpid()}.jsonl"
        with path.open("a") as handle:
            handle.write("{torn line\n")
        assert [record["name"] for record in load_spans(traced)] == ["ok"]

    def test_chrome_trace_renders_complete_events(self, traced):
        with obs.trace.span("outer"):
            pass
        obs.trace.flush_spans()
        payload = obs_trace.chrome_trace(load_spans(traced))
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X" and event["name"] == "outer"
        assert event["ts"] > 0 and event["dur"] >= 0
        assert json.dumps(payload)  # fully JSON-serialisable


# ----------------------------------------------------------------------
# Metrics: histograms, registry merge, export
# ----------------------------------------------------------------------
class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        histogram = Histogram()
        for value in (0.001, 0.004, 0.1):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.105)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.1)
        assert sum(histogram.buckets) == 3

    def test_percentile_is_a_bucket_upper_bound(self):
        histogram = Histogram()
        for _ in range(99):
            histogram.observe(1e-5)
        histogram.observe(1.0)
        assert histogram.percentile(50) >= 1e-5
        assert histogram.percentile(50) < 1e-3  # nowhere near the outlier
        assert histogram.percentile(100) == pytest.approx(1.0)
        assert Histogram().percentile(99) == 0.0

    def test_merge_matches_observing_everything_in_one(self):
        left, right, reference = Histogram(), Histogram(), Histogram()
        for index, value in enumerate((1e-6, 5e-4, 0.02, 3.0)):
            (left if index % 2 else right).observe(value)
            reference.observe(value)
        left.merge_dict(right.as_dict())
        merged, expected = left.as_dict(), reference.as_dict()
        assert merged["total"] == pytest.approx(expected["total"])
        merged.pop("total"), expected.pop("total")  # float addition order
        assert merged == expected

    def test_dict_roundtrip(self):
        histogram = Histogram()
        histogram.observe(0.5)
        assert Histogram.from_dict(histogram.as_dict()).as_dict() == histogram.as_dict()


class TestRegistry:
    def test_merge_sums_counters_and_maxes_gauges(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter_add("jobs", 2)
        first.gauge_max("depth", 10)
        second.counter_add("jobs", 3)
        second.gauge_max("depth", 7)
        second.observe("lat", 0.01)
        first.merge(second.snapshot())
        snapshot = first.snapshot()
        assert snapshot["counters"]["jobs"] == 5
        assert snapshot["gauges"]["depth"] == 10  # high-water mark, not sum
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_merge_is_commutative(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter_add("a", 1)
        first.observe("h", 0.1)
        second.counter_add("a", 4)
        second.gauge_max("g", 2)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge(first.snapshot())
        forward.merge(second.snapshot())
        backward.merge(second.snapshot())
        backward.merge(first.snapshot())
        assert forward.snapshot() == backward.snapshot()

    def test_module_helpers_are_noops_while_disabled(self):
        obs_metrics.counter_add("ghost")
        obs_metrics.gauge_max("ghost", 9)
        obs_metrics.observe("ghost", 1.0)
        snapshot = obs_metrics.registry().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_module_helpers_record_while_enabled(self, traced):
        obs_metrics.counter_add("real", 2)
        obs_metrics.gauge_max("mark", 5)
        obs_metrics.observe("lat", 0.25)
        snapshot = obs_metrics.registry().snapshot()
        assert snapshot["counters"]["real"] == 2
        assert snapshot["gauges"]["mark"] == 5
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_flush_and_merged_snapshot_fold_per_pid_files(self, traced):
        obs_metrics.counter_add("jobs", 2)
        obs_metrics.flush()
        # A "second worker" flushed its own cumulative totals under its pid.
        peer = MetricsRegistry()
        peer.counter_add("jobs", 3)
        peer.gauge_max("depth", 9)
        (traced / "metrics-99999.json").write_text(json.dumps(peer.snapshot()))
        (traced / "metrics-corrupt.json").write_text("{not json")  # skipped
        merged = merged_snapshot(traced)
        assert merged["counters"]["jobs"] == 5
        assert merged["gauges"]["depth"] == 9

    def test_flush_is_cumulative_and_idempotent_under_merge(self, traced):
        obs_metrics.counter_add("jobs", 1)
        obs_metrics.flush()
        obs_metrics.flush()  # same totals rewritten, not doubled
        assert merged_snapshot(traced)["counters"]["jobs"] == 1

    def test_prometheus_exposition_renders_all_three_kinds(self):
        registry = MetricsRegistry()
        registry.counter_add("cache.hits", 3)
        registry.gauge_max("depth", 2)
        registry.observe("lat", 0.5)
        text = registry.to_prometheus()
        assert "# TYPE deterrent_cache_hits counter" in text
        assert "deterrent_cache_hits 3" in text  # dots sanitised
        assert "# TYPE deterrent_depth gauge" in text
        assert '# TYPE deterrent_lat histogram' in text
        assert 'deterrent_lat_bucket{le="+Inf"} 1' in text
        assert "deterrent_lat_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("lat", BUCKET_BOUNDS[0] / 2)
        registry.observe("lat", BUCKET_BOUNDS[0] / 2)
        lines = registry.to_prometheus().splitlines()
        first_bucket = next(line for line in lines if "_bucket" in line)
        assert first_bucket.endswith(" 2")

    def test_payload_to_prometheus_flattens_numeric_leaves(self):
        text = payload_to_prometheus(
            {"queue": {"done": 3, "stopped": True}, "service": {"jobs": 1.5}}
        )
        assert "deterrent_queue_done 3" in text
        assert "deterrent_service_jobs 1.5" in text
        assert "stopped" not in text  # booleans are not metrics

    def test_prometheus_name_sanitises_forbidden_characters(self):
        assert prometheus_name("a.b-c/d") == "a_b_c_d"

    def test_percentile_summary_shape(self):
        registry = MetricsRegistry()
        for _ in range(10):
            registry.observe("lat", 0.001)
        summary = percentile_summary(registry.snapshot())
        assert set(summary["lat"]) == {"count", "total", "p50", "p90", "p99"}
        assert summary["lat"]["count"] == 10


class TestSolverStatsAbsorption:
    STATS = {"decisions": 10, "propagations": 100, "conflicts": 2, "max_trail": 50}

    def test_iter_solver_stats_walks_nested_records(self):
        record = {
            "cells": [
                {"result": {"solver_stats": self.STATS}},
                {"result": {"rows": [{"solver_stats": self.STATS}]}},
            ],
            "solver_stats": "not-a-dict",  # ignored: wrong shape
        }
        assert list(iter_solver_stats(record)) == [self.STATS, self.STATS]

    def test_absorb_matches_solver_stats_merge_semantics(self, traced):
        absorb_solver_stats(self.STATS)
        absorb_solver_stats({"decisions": 5, "max_trail": 80, "note": "skip"})
        snapshot = obs_metrics.registry().snapshot()
        assert snapshot["counters"]["solver_decisions"] == 15  # summed
        assert snapshot["gauges"]["solver_max_trail"] == 80  # high-water
        assert "solver_note" not in snapshot["counters"]  # non-numeric skipped

    def test_absorb_is_a_noop_while_disabled(self):
        absorb_solver_stats(self.STATS)
        assert obs_metrics.registry().snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfileHooks:
    def test_hot_path_is_none_while_disabled(self):
        assert obs_profile.hot_path("sat.propagate") is None

    def test_hot_path_samples_every_nth_call(self, traced):
        probe = obs_profile.hot_path("loop", every=4)
        fired = [probe.sample() for _ in range(8)]
        assert fired == [False, False, False, True] * 2
        probe.observe(0.001)
        snapshot = obs_metrics.registry().snapshot()
        assert snapshot["histograms"]["profile_loop_seconds"]["count"] == 1

    def test_timed_records_one_observation_per_call(self, traced):
        for _ in range(3):
            with obs_profile.timed("cache.fetch"):
                pass
        snapshot = obs_metrics.registry().snapshot()
        assert snapshot["histograms"]["profile_cache_fetch_seconds"]["count"] == 3

    def test_timed_is_a_noop_while_disabled(self):
        with obs_profile.timed("cache.fetch"):
            pass
        assert obs_metrics.registry().snapshot()["histograms"] == {}


# ----------------------------------------------------------------------
# The summary block and the `deterrent trace` CLI view
# ----------------------------------------------------------------------
class TestSummary:
    def test_summary_is_none_while_disabled(self):
        assert obs.summary() is None

    def test_summary_flushes_and_reports_spans_and_instruments(self, traced):
        with obs.trace.span("root"):
            obs_metrics.counter_add("jobs", 2)
            with obs_profile.timed("step"):
                pass
        summary = obs.summary()
        assert summary["trace_dir"] == str(traced)
        assert summary["spans"] == 1
        assert summary["counters"]["jobs"] == 2
        assert summary["profiles"]["profile_step_seconds"]["count"] == 1


class TestTraceCommand:
    def _export_tree(self):
        with obs.trace.span("cli.run", attrs={"experiment": "seq"}):
            with obs.trace.span("cell[0]", attrs={"cell": "c0"}):
                pass
        obs_metrics.counter_add("runner_cells", 1)
        with obs_profile.timed("solve"):
            pass
        obs.flush()

    def test_renders_tree_instruments_and_profiles(self, traced, capsys):
        self._export_tree()
        assert cli.main(["trace", str(traced)]) == 0
        out = capsys.readouterr().out
        assert "2 spans, 1 trace(s), 1 root(s)" in out
        assert "cli.run" in out and "cell[0]" in out
        assert "runner_cells = 1" in out
        assert "profile_solve_seconds" in out

    def test_check_passes_on_a_connected_tree(self, traced, capsys):
        self._export_tree()
        assert cli.main(["trace", str(traced), "--check"]) == 0

    def test_check_fails_on_an_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli.main(["trace", str(empty)]) == 0  # informational by default
        assert cli.main(["trace", str(empty), "--check"]) == 1

    def test_check_fails_on_orphaned_spans(self, traced, capsys):
        orphan = obs.trace.start_span(
            "lost", parent=TraceContext(trace_id="f" * 32, span_id="e" * 16)
        )
        orphan.end()
        obs.flush()
        assert cli.main(["trace", str(traced), "--check"]) == 1
        assert "never exported" in capsys.readouterr().out

    def test_missing_directory_is_an_error(self, tmp_path, capsys):
        assert cli.main(["trace", str(tmp_path / "nope")]) == 2

    def test_chrome_export_writes_loadable_json(self, traced, tmp_path, capsys):
        self._export_tree()
        chrome_path = tmp_path / "out" / "trace.json"
        assert cli.main(["trace", str(traced), "--chrome", str(chrome_path)]) == 0
        payload = json.loads(chrome_path.read_text())
        assert len(payload["traceEvents"]) == 2
