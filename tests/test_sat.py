"""Tests for the CNF container, the CDCL solver, Tseitin encoding, and justification."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import generators
from repro.sat.cnf import CNF
from repro.sat.encode import CircuitEncoder
from repro.sat.justify import Justifier
from repro.sat.solver import CdclSolver, solve_cnf
from repro.simulation.logic_sim import BitParallelSimulator, simulate_pattern


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exhaustive SAT check for tiny formulas."""
    for assignment in itertools.product([False, True], repeat=cnf.num_vars):
        if all(
            any(assignment[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return False


class TestCnf:
    def test_new_var_increments(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_add_clause_validates_literals(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([0])
        with pytest.raises(ValueError):
            cnf.add_clause([2])
        with pytest.raises(ValueError):
            cnf.add_clause([])

    def test_dimacs_roundtrip(self):
        cnf = CNF(num_vars=3, clauses=[[1, -2], [2, 3], [-1, -3]])
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed.num_vars == 3
        assert parsed.clauses == cnf.clauses

    def test_dimacs_parses_comments(self):
        text = "c comment\np cnf 2 1\n1 -2 0\n"
        parsed = CNF.from_dimacs(text)
        assert parsed.clauses == [[1, -2]]

    def test_dimacs_write(self, tmp_path):
        cnf = CNF(num_vars=2, clauses=[[1, 2]])
        path = tmp_path / "f.cnf"
        cnf.write_dimacs(path)
        assert CNF.from_dimacs(path.read_text()).clauses == [[1, 2]]

    def test_copy_is_independent(self):
        cnf = CNF(num_vars=2, clauses=[[1, 2]])
        clone = cnf.copy()
        clone.add_clause([-1])
        assert cnf.num_clauses == 1


class TestCdclSolver:
    def test_trivial_sat(self):
        cnf = CNF(num_vars=1, clauses=[[1]])
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert result.value(1) is True

    def test_trivial_unsat(self):
        cnf = CNF(num_vars=1, clauses=[[1], [-1]])
        assert not solve_cnf(cnf).satisfiable

    def test_unsat_result_has_no_model(self):
        cnf = CNF(num_vars=1, clauses=[[1], [-1]])
        result = solve_cnf(cnf)
        with pytest.raises(ValueError):
            result.value(1)

    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p[i][j]: pigeon i in hole j (i in 0..2, j in 0..1).
        cnf = CNF()
        var = [[cnf.new_var() for _ in range(2)] for _ in range(3)]
        for i in range(3):
            cnf.add_clause([var[i][0], var[i][1]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    cnf.add_clause([-var[i1][j], -var[i2][j]])
        assert not solve_cnf(cnf).satisfiable

    def test_model_satisfies_formula(self):
        cnf = CNF(num_vars=4, clauses=[[1, 2], [-1, 3], [-3, -2, 4], [-4, 1]])
        result = solve_cnf(cnf)
        assert result.satisfiable
        for clause in cnf.clauses:
            assert any(result.value(abs(lit)) == (lit > 0) for lit in clause)

    def test_assumptions_sat_and_unsat(self):
        cnf = CNF(num_vars=2, clauses=[[1, 2]])
        solver = CdclSolver(cnf)
        assert solver.solve([1]).satisfiable
        assert solver.solve([-1]).satisfiable  # forces 2
        assert not solver.solve([-1, -2]).satisfiable
        # The base formula must stay satisfiable after an UNSAT-under-assumptions call.
        assert solver.solve().satisfiable

    def test_conflicting_assumption_with_unit_clause(self):
        cnf = CNF(num_vars=2, clauses=[[1], [1, 2]])
        solver = CdclSolver(cnf)
        assert not solver.solve([-1]).satisfiable
        assert solver.solve([2]).satisfiable

    def test_incremental_reuse_many_queries(self):
        cnf = CNF(num_vars=4, clauses=[[1, 2, 3], [-1, 4], [-2, -4]])
        solver = CdclSolver(cnf)
        answers = [solver.solve([lit]).satisfiable for lit in (1, 2, 3, 4, -4)]
        assert answers == [True, True, True, True, True]
        assert not solver.solve([1, -4]).satisfiable

    def test_add_clause_after_solving(self):
        solver = CdclSolver(CNF(num_vars=2, clauses=[[1, 2]]))
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve().satisfiable

    def test_phase_preferences_steer_free_variables(self):
        cnf = CNF(num_vars=3, clauses=[[1, 2, 3]])
        solver = CdclSolver(cnf)
        solver.set_phases({1: True, 2: True, 3: True})
        result = solver.solve()
        assert result.satisfiable
        assert any(result.value(v) for v in (1, 2, 3))

    def test_set_phases_unknown_variable_rejected(self):
        solver = CdclSolver(CNF(num_vars=1, clauses=[[1]]))
        with pytest.raises(ValueError):
            solver.set_phases({5: True})

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_3sat_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(min_value=3, max_value=8))
        num_clauses = data.draw(st.integers(min_value=1, max_value=24))
        cnf = CNF(num_vars=num_vars)
        for _ in range(num_clauses):
            size = data.draw(st.integers(min_value=1, max_value=3))
            clause = data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=num_vars).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=size, max_size=size,
                )
            )
            cnf.add_clause(clause)
        assert solve_cnf(cnf).satisfiable == brute_force_satisfiable(cnf)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=30), st.data())
    def test_random_3sat_under_assumptions(self, seed, data):
        rng = np.random.default_rng(seed)
        num_vars = 7
        cnf = CNF(num_vars=num_vars)
        for _ in range(18):
            variables = rng.choice(num_vars, size=3, replace=False) + 1
            clause = [int(v) if rng.random() < 0.5 else -int(v) for v in variables]
            cnf.add_clause(clause)
        assumption_var = data.draw(st.integers(min_value=1, max_value=num_vars))
        assumption = data.draw(st.sampled_from([assumption_var, -assumption_var]))
        constrained = cnf.copy()
        constrained.add_clause([assumption])
        assert (
            CdclSolver(cnf).solve([assumption]).satisfiable
            == brute_force_satisfiable(constrained)
        )


class TestCircuitEncoder:
    def test_rejects_sequential(self):
        sequential = generators.sequential_controller("s", state_bits=3, data_width=4)
        with pytest.raises(ValueError):
            CircuitEncoder(sequential)

    def test_every_net_has_a_variable(self, c17):
        encoder = CircuitEncoder(c17)
        for net in c17.nets:
            assert encoder.variable(net) >= 1

    def test_unknown_net_raises(self, c17):
        encoder = CircuitEncoder(c17)
        with pytest.raises(KeyError):
            encoder.variable("nope")

    def test_literal_polarity(self, c17):
        encoder = CircuitEncoder(c17)
        variable = encoder.variable("22")
        assert encoder.literal("22", 1) == variable
        assert encoder.literal("22", 0) == -variable
        with pytest.raises(ValueError):
            encoder.literal("22", 2)

    def test_encoding_consistent_with_simulation(self, c17):
        """Every satisfying model of the CNF must agree with the simulator."""
        encoder = CircuitEncoder(c17)
        solver = CdclSolver(encoder.cnf)
        result = solver.solve()
        assert result.satisfiable
        inputs = encoder.decode_inputs(result.model)
        simulated = simulate_pattern(c17, inputs)
        for net in c17.nets:
            assert result.value(encoder.variable(net)) == bool(simulated[net])


class TestJustifier:
    def test_witness_respects_requirements(self, c17):
        justifier = Justifier(c17)
        witness = justifier.witness({"22": 0, "23": 1})
        assert witness is not None
        simulated = simulate_pattern(c17, witness)
        assert simulated["22"] == 0
        assert simulated["23"] == 1

    def test_unsatisfiable_requirement_returns_none(self):
        netlist = generators.c17()
        justifier = Justifier(netlist)
        # Net 10 = NAND(1, 3) and net 11 = NAND(3, 6); requiring 10=0 forces 1=3=1,
        # and requiring 11=0 forces 3=6=1, so both can be 0 together; instead use a
        # contradiction on the same net through gate consistency: 10=0 requires 3=1,
        # while 11=1 with 3=1 requires 6=0 — satisfiable; so build a direct conflict.
        assert justifier.is_satisfiable({"10": 0, "11": 0})
        assert not justifier.is_satisfiable({"10": 0, "1": 0})

    def test_conflicting_requirements_shortcut(self, c17):
        justifier = Justifier(c17)
        assert not justifier.are_compatible({"22": 1}, {"22": 0})

    def test_query_counter_increments(self, c17):
        justifier = Justifier(c17)
        before = justifier.num_queries
        justifier.is_satisfiable({"22": 1})
        justifier.witness({"23": 0})
        assert justifier.num_queries == before + 2

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=20), st.data())
    def test_sat_answers_match_exhaustive_simulation(self, seed, data):
        netlist = generators.random_logic_circuit(
            "j", num_inputs=7, num_gates=35, num_outputs=4, seed=seed
        )
        simulator = BitParallelSimulator(netlist)
        all_patterns = np.array(list(itertools.product([0, 1], repeat=7)), dtype=np.uint8)
        values = simulator.run_patterns(all_patterns)
        justifier = Justifier(netlist)
        gate_nets = [gate.output for gate in netlist.gates]
        size = data.draw(st.integers(min_value=1, max_value=4))
        picked = data.draw(st.lists(st.sampled_from(gate_nets), min_size=size, max_size=size,
                                    unique=True))
        requirements = {net: data.draw(st.integers(min_value=0, max_value=1)) for net in picked}
        expected = any(
            all(values[net][row] == value for net, value in requirements.items())
            for row in range(all_patterns.shape[0])
        )
        assert justifier.is_satisfiable(requirements) == expected
        if expected:
            witness = justifier.witness(requirements)
            simulated = simulate_pattern(netlist, witness)
            assert all(simulated[net] == value for net, value in requirements.items())

    def test_preferred_values_bias_witness(self, small_multiplier, multiplier_rare_nets):
        preferences = {item.net: item.rare_value for item in multiplier_rare_nets}
        biased = Justifier(small_multiplier, preferred_values=preferences)
        plain = Justifier(small_multiplier)
        # Pick the rarest net whose rare value is actually reachable.
        target = next(
            item for item in multiplier_rare_nets
            if plain.is_satisfiable({item.net: item.rare_value})
        )
        requirement = {target.net: target.rare_value}
        witness_biased = biased.witness(requirement)
        witness_plain = plain.witness(requirement)
        assert witness_biased is not None and witness_plain is not None
        # Phase preferences change which witness is produced but never its validity.
        for witness in (witness_biased, witness_plain):
            simulated = simulate_pattern(small_multiplier, witness)
            assert simulated[target.net] == target.rare_value

    def test_preferred_values_unknown_net_rejected(self, c17):
        justifier = Justifier(c17)
        with pytest.raises(KeyError):
            justifier.set_preferred_values({"ghost": 1})
