"""Unit tests for gate primitives and their Boolean semantics."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.circuits.gates import Gate, GateType, evaluate_gate


class TestGateType:
    def test_inverting_gates(self):
        assert GateType.NAND.is_inverting
        assert GateType.NOR.is_inverting
        assert GateType.XNOR.is_inverting
        assert GateType.NOT.is_inverting

    def test_non_inverting_gates(self):
        assert not GateType.AND.is_inverting
        assert not GateType.OR.is_inverting
        assert not GateType.XOR.is_inverting
        assert not GateType.BUF.is_inverting

    def test_unary_gate_input_bounds(self):
        assert GateType.NOT.min_inputs == 1
        assert GateType.NOT.max_inputs == 1
        assert GateType.BUF.min_inputs == 1
        assert GateType.BUF.max_inputs == 1

    def test_multi_input_gate_bounds(self):
        assert GateType.AND.min_inputs == 2
        assert GateType.AND.max_inputs is None
        assert GateType.XOR.min_inputs == 2


class TestGateConstruction:
    def test_valid_gate(self):
        gate = Gate(output="y", gate_type=GateType.AND, inputs=("a", "b"))
        assert gate.fanin == 2
        assert gate.output == "y"

    def test_and_with_one_input_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            Gate(output="y", gate_type=GateType.AND, inputs=("a",))

    def test_not_with_two_inputs_rejected(self):
        with pytest.raises(ValueError, match="at most 1"):
            Gate(output="y", gate_type=GateType.NOT, inputs=("a", "b"))

    def test_wide_gate_accepted(self):
        gate = Gate(output="y", gate_type=GateType.OR, inputs=tuple(f"i{k}" for k in range(8)))
        assert gate.fanin == 8


class TestEvaluateGate:
    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)])
    def test_and_truth_table(self, a, b, expected):
        assert evaluate_gate(GateType.AND, [a, b]) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_nand_truth_table(self, a, b, expected):
        assert evaluate_gate(GateType.NAND, [a, b]) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)])
    def test_or_truth_table(self, a, b, expected):
        assert evaluate_gate(GateType.OR, [a, b]) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)])
    def test_nor_truth_table(self, a, b, expected):
        assert evaluate_gate(GateType.NOR, [a, b]) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_xor_truth_table(self, a, b, expected):
        assert evaluate_gate(GateType.XOR, [a, b]) == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)])
    def test_xnor_truth_table(self, a, b, expected):
        assert evaluate_gate(GateType.XNOR, [a, b]) == expected

    def test_not_and_buf(self):
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.NOT, [1]) == 0
        assert evaluate_gate(GateType.BUF, [0]) == 0
        assert evaluate_gate(GateType.BUF, [1]) == 1

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
    def test_and_nand_complementary(self, values):
        assert evaluate_gate(GateType.AND, values) == 1 - evaluate_gate(GateType.NAND, values)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
    def test_or_nor_complementary(self, values):
        assert evaluate_gate(GateType.OR, values) == 1 - evaluate_gate(GateType.NOR, values)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
    def test_xor_is_parity(self, values):
        assert evaluate_gate(GateType.XOR, values) == sum(values) % 2

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=6))
    def test_xor_xnor_complementary(self, values):
        assert evaluate_gate(GateType.XOR, values) == 1 - evaluate_gate(GateType.XNOR, values)

    def test_wide_and_requires_all_ones(self):
        for width in (3, 4, 5):
            for assignment in itertools.product([0, 1], repeat=width):
                expected = int(all(assignment))
                assert evaluate_gate(GateType.AND, list(assignment)) == expected
