"""The detection service: job validation, content addressing, HTTP round trip.

The heavyweight end-to-end checks run one *tiny* 1-cell
``sequential_detect`` grid, so the whole file stays a few seconds.  The
crucial acceptance property is exercised directly: a job submitted over
HTTP and executed by a queue worker produces a record whose report and
cell results are bit-identical to a local serial
:class:`~repro.runner.execution.ExperimentRunner` run of the same design
— and resubmitting it is answered from the artifact cache without
touching the queue.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro import obs

from repro.circuits.bench_io import dumps_bench, loads_bench
from repro.circuits.library import load_benchmark
from repro.runner.cache import set_default_cache
from repro.runner.execution import ExperimentRunner
from repro.service.jobs import (
    JobValidationError,
    resolve_design,
    validate_job,
)
from repro.service.queue import WorkerOptions, worker_loop
from repro.service.server import DeterrentService, http_json, make_server

pytestmark = pytest.mark.service


@pytest.fixture(autouse=True)
def _reset_default_cache():
    yield
    set_default_cache(None)


def bench_for(name: str) -> str:
    return dumps_bench(load_benchmark(name, combinational_view=False))


#: A 1-cell sequential_detect grid: the smallest real service job.
SEQ_OPTIONS = {"cycles": [2], "modes": ["consecutive"], "counts": [2]}


def seq_payload(**overrides) -> dict:
    payload = {
        "experiment": "sequential_detect",
        "profile": "tiny",
        "options": dict(SEQ_OPTIONS),
        "bench": bench_for("s13207_like"),
    }
    payload.update(overrides)
    return payload


def strip_elapsed(cells: list[dict]) -> list[dict]:
    """Cells without wall-clock timing — the bit-identical part."""
    return [
        {key: value for key, value in cell.items() if key != "elapsed_seconds"}
        for cell in cells
    ]


# ----------------------------------------------------------------------
# Validation (the 400 space)
# ----------------------------------------------------------------------
class TestValidateJob:
    def test_accepts_a_well_formed_submission(self):
        request = validate_job(seq_payload())
        assert request.experiment == "sequential_detect"
        assert request.profile == "tiny"
        assert request.netlist.is_sequential

    def test_rejects_non_object_payloads(self):
        with pytest.raises(JobValidationError, match="JSON object"):
            validate_job(["not", "a", "dict"])

    def test_rejects_missing_or_empty_bench(self):
        with pytest.raises(JobValidationError, match="'bench'"):
            validate_job(seq_payload(bench=""))
        with pytest.raises(JobValidationError, match="'bench'"):
            validate_job({"experiment": "sequential_detect"})

    def test_rejects_unknown_experiment(self):
        with pytest.raises(JobValidationError, match="unknown experiment"):
            validate_job(seq_payload(experiment="not_an_experiment"))

    def test_rejects_unknown_profile(self):
        with pytest.raises(JobValidationError, match="profile"):
            validate_job(seq_payload(profile="galactic"))

    def test_rejects_reserved_design_options(self):
        payload = seq_payload()
        payload["options"]["designs"] = ["s13207_like"]
        with pytest.raises(JobValidationError, match="derived from the submitted"):
            validate_job(payload)

    def test_rejects_unknown_options_naming_the_supported_set(self):
        payload = seq_payload()
        payload["options"]["granularity"] = 7
        with pytest.raises(JobValidationError, match="granularity") as excinfo:
            validate_job(payload)
        assert "cycles" in str(excinfo.value)  # supported options are listed

    def test_rejects_unparsable_bench_text(self):
        with pytest.raises(JobValidationError, match="invalid .bench netlist"):
            validate_job(seq_payload(bench="INPUT(\nnot bench at all"))

    def test_rejects_a_netlist_the_harness_grid_rejects(self):
        # c17 is combinational; the sequential harness's own cells()
        # validation must surface as a 400, not a worker-side crash.
        with pytest.raises(JobValidationError, match="(?i)sequential|combinational"):
            validate_job(seq_payload(bench=bench_for("c17")))

    def test_job_ids_are_deterministic_content_addresses(self):
        first = validate_job(seq_payload()).job_id()
        again = validate_job(seq_payload()).job_id()
        assert first == again
        assert len(first) == 64
        other = seq_payload()
        other["options"]["cycles"] = [3]
        assert validate_job(other).job_id() != first

    def test_job_id_ignores_option_order(self):
        shuffled = seq_payload()
        shuffled["options"] = dict(reversed(list(shuffled["options"].items())))
        assert validate_job(shuffled).job_id() == validate_job(seq_payload()).job_id()


# ----------------------------------------------------------------------
# Design resolution (bit-identity with the local path starts here)
# ----------------------------------------------------------------------
class TestResolveDesign:
    def test_submitted_library_netlist_resolves_to_its_benchmark_name(self):
        # The exported .bench names the circuit in a comment; a submitted
        # copy parses as "submitted", so matching must be structural.
        netlist = loads_bench(bench_for("s13207_like"), name="submitted")
        assert resolve_design(netlist) == "s13207_like"

    def test_combinational_library_netlist_resolves_too(self):
        netlist = loads_bench(bench_for("c17"), name="submitted")
        assert resolve_design(netlist) == "c17"

    def test_unknown_netlist_registers_a_stable_submitted_name(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
        netlist = loads_bench(text, name="submitted")
        name = resolve_design(netlist)
        assert name.startswith("submitted_")
        # Registration makes it loadable, and re-resolving is stable.
        assert resolve_design(loads_bench(text, name="submitted")) == name
        assert dumps_bench(load_benchmark(name)).count("NAND") == 1


# ----------------------------------------------------------------------
# The HTTP service end to end
# ----------------------------------------------------------------------
@pytest.fixture
def service_url(tmp_path):
    service = DeterrentService(
        tmp_path / "queue", cache_dir=tmp_path / "svc-cache"
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def drain_one_job(service: DeterrentService) -> None:
    """Run one in-process queue worker until it has finished one job."""
    done = worker_loop(
        service.queue,
        WorkerOptions(
            worker_id="test-worker",
            max_jobs=1,
            cache_dir=str(service.cache.root),
        ),
    )
    assert done == 1


class TestHTTPEndpoints:
    def test_root_lists_endpoints_and_health_is_ok(self, service_url):
        url, _ = service_url
        status, body = http_json(url + "/")
        assert status == 200
        assert "POST /jobs" in body["endpoints"]
        status, health = http_json(url + "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["queued"] == 0 and health["leased"] == 0

    def test_unknown_paths_and_jobs_are_404(self, service_url):
        url, _ = service_url
        assert http_json(url + "/nope")[0] == 404
        status, body = http_json(url + "/jobs/" + "f" * 64)
        assert status == 404
        assert body["status"] == "unknown"

    def test_malformed_json_and_invalid_jobs_are_400(self, service_url):
        url, service = service_url
        request = urllib.request.Request(
            url + "/jobs",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raised = None
        except urllib.error.HTTPError as error:
            raised = error.code
            error.read()
        assert raised == 400

        status, body = http_json(
            url + "/jobs", payload=seq_payload(experiment="bogus")
        )
        assert status == 400
        assert "unknown experiment" in body["error"]
        assert service.counters["jobs_invalid"] == 1

    def test_full_job_round_trip_matches_local_serial_run(
        self, service_url, tmp_path
    ):
        url, service = service_url

        # Local serial reference on its OWN fresh cache (a shared cache
        # would serve the second run's cells from disk and change the
        # "fresh cells only" solver-stats footer in the report).
        local = ExperimentRunner(jobs=1, cache_dir=tmp_path / "local-cache").run(
            "sequential_detect",
            profile="tiny",
            options={"designs": ["s13207_like"], **SEQ_OPTIONS},
        )

        # Submit the same circuit as an anonymous .bench over HTTP.
        status, body = http_json(url + "/jobs", payload=seq_payload())
        assert status == 202
        assert body["status"] == "queued" and body["cached"] is False
        job_id = body["job_id"]

        # A duplicate submission while queued does not enqueue twice.
        status, dup = http_json(url + "/jobs", payload=seq_payload())
        assert status == 202
        assert dup["duplicate"] is True and dup["job_id"] == job_id
        assert service.counters["jobs_enqueued"] == 1

        status, pending = http_json(url + "/jobs/" + job_id)
        assert (status, pending["status"]) == (200, "queued")

        drain_one_job(service)

        status, done = http_json(url + "/jobs/" + job_id)
        assert status == 200
        assert done["status"] == "done"
        assert done["deliveries"] == 1
        record = done["result"]

        # Bit-identical to the local serial run: same resolved design,
        # same per-cell params and results, same rendered report.
        assert record["design"] == "s13207_like"
        assert record["report"] == local.report_text
        assert strip_elapsed(record["cells"]) == strip_elapsed(
            local.record()["cells"]
        )

        # The generated SAT-guided sequence set rides along in the record.
        (test_set,) = record["test_sets"]
        assert test_set["kind"] == "sequences"
        assert len(test_set["sequences"]) > 0
        assert len(test_set["inputs"]) > 0

        # Resubmitting is a pure cache hit: 200, no new queue work.
        status, cached = http_json(url + "/jobs", payload=seq_payload())
        assert status == 200
        assert cached["cached"] is True
        assert cached["result"]["report"] == local.report_text
        assert service.counters["jobs_cache_hits"] == 1
        assert service.counters["jobs_enqueued"] == 1

        # Metrics reflect all of it: service counters, queue telemetry,
        # cache lifetime stats (flushed by the worker), solver aggregates.
        status, metrics = http_json(url + "/metrics")
        assert status == 200
        assert metrics["service"]["jobs_submitted"] == 3
        assert metrics["queue"]["done"] == 1
        assert metrics["workers"]["test-worker"]["jobs_done"] == 1
        assert metrics["cache"]["lifetime"]["stores"] >= 1
        assert metrics["solver"].get("conflicts", 0) > 0


# ----------------------------------------------------------------------
# Telemetry over HTTP: Prometheus exposition + traceparent propagation
# ----------------------------------------------------------------------
def fetch_text(url: str, headers: dict | None = None) -> tuple[int, str]:
    """GET a plain-text resource (http_json would try to parse JSON)."""
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read().decode()


@pytest.fixture
def traced_service(tmp_path):
    """A service with telemetry enabled on a throwaway trace directory."""
    trace_dir = tmp_path / "trace"
    obs.configure(trace_dir, export_env=False)
    try:
        yield trace_dir
    finally:
        obs.trace.flush_spans()
        obs.disable()
        obs.metrics.reset_registry()
        obs.trace.install_remote_parent(None)


class TestPrometheusExposition:
    def test_query_parameter_selects_the_text_format(self, service_url):
        url, _ = service_url
        status, text = fetch_text(url + "/metrics?format=prometheus")
        assert status == 200
        assert "# TYPE deterrent_queue_done gauge" in text
        assert "deterrent_queue_done 0" in text
        assert "deterrent_service_jobs_submitted 0" in text

    def test_accept_header_selects_the_text_format(self, service_url):
        url, _ = service_url
        status, text = fetch_text(
            url + "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert text.startswith("# TYPE")

    def test_default_format_stays_json(self, service_url):
        url, _ = service_url
        status, body = http_json(url + "/metrics")
        assert status == 200
        assert isinstance(body, dict) and "queue" in body

    def test_registry_instruments_ride_along_when_traced(
        self, service_url, traced_service
    ):
        url, _ = service_url
        obs.metrics.counter_add("queue_jobs_run", 3)
        status, text = fetch_text(url + "/metrics?format=prometheus")
        assert status == 200
        assert "# TYPE deterrent_queue_jobs_run counter" in text
        assert "deterrent_queue_jobs_run 3" in text
        assert "\n\n" not in text.strip()  # one well-formed exposition


class TestTraceparentPropagation:
    def test_submit_joins_the_callers_trace(self, service_url, traced_service):
        url, service = service_url
        with obs.trace.span("client.submit") as client_span:
            # http_json injects the ambient context as a traceparent header.
            status, body = http_json(url + "/jobs", payload=seq_payload())
        assert status == 202 and body["status"] == "queued"

        drain_one_job(service)
        obs.flush()

        from repro.obs.trace import build_tree, load_spans, orphan_spans

        spans = load_spans(traced_service)
        assert orphan_spans(spans) == []
        assert {record["trace_id"] for record in spans} == {
            client_span.trace_id
        }  # one connected trace: client -> service -> queue worker
        by_name = {record["name"]: record for record in spans}
        assert by_name["service.submit"]["parent_id"] == client_span.span_id
        # The span records the abbreviated job id (first 16 hex chars).
        assert body["job_id"].startswith(by_name["queue.job"]["attrs"]["job_id"])
        # The worker's execution hangs off the job span, not a fresh root.
        roots, _ = build_tree(spans)
        assert len(roots) == 1 and roots[0]["name"] == "client.submit"

    def test_submission_without_a_traceparent_still_works(
        self, service_url, traced_service
    ):
        url, service = service_url
        obs.trace.install_remote_parent(None)
        status, body = http_json(url + "/jobs", payload=seq_payload())
        assert status == 202
        drain_one_job(service)
        status, done = http_json(url + "/jobs/" + body["job_id"])
        assert done["status"] == "done"
