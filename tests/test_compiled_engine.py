"""Differential tests for the compiled simulation engine.

The compiled engine (:mod:`repro.simulation.compiled`) must match the
reference per-gate interpreter bit-for-bit on every gate type, on random
netlists, and on the ISCAS-style library circuits; and the batched
multi-Trojan evaluator must return exactly the verdicts of the literal
one-infected-netlist-per-Trojan flow.
"""

import itertools

import numpy as np
import pytest

from repro.baselines.random_patterns import random_pattern_set
from repro.circuits import generators
from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.library import load_benchmark
from repro.circuits.netlist import Netlist
from repro.simulation.compiled import CompiledNetlist, compile_netlist
from repro.simulation.logic_sim import (
    BitParallelSimulator,
    pack_patterns,
    unpack_values,
)
from repro.simulation.probability import estimate_signal_probabilities
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.evaluation import sequential_trigger_coverage, trigger_coverage
from repro.trojan.insertion import sample_trojans


def assert_engines_match(netlist, patterns):
    """Compiled and reference engines agree on every net for ``patterns``."""
    reference = BitParallelSimulator(netlist, engine="reference").run_patterns(patterns)
    compiled = BitParallelSimulator(netlist, engine="compiled").run_patterns(patterns)
    assert set(reference) == set(compiled)
    for net in reference:
        assert np.array_equal(reference[net], compiled[net]), f"net {net} diverges"


class TestGateTypeEquivalence:
    @pytest.mark.parametrize("gate_type", list(GateType))
    @pytest.mark.parametrize("fanin", [1, 2, 3, 4])
    def test_single_gate_matches_scalar_semantics(self, gate_type, fanin):
        if fanin < gate_type.min_inputs:
            pytest.skip("fan-in below the gate's minimum")
        if gate_type.max_inputs is not None and fanin > gate_type.max_inputs:
            pytest.skip("fan-in above the gate's maximum")
        netlist = Netlist(f"{gate_type.value.lower()}{fanin}")
        inputs = [netlist.add_input(f"i{k}") for k in range(fanin)]
        netlist.add_gate("y", gate_type, tuple(inputs))
        netlist.add_output("y")
        patterns = np.array(list(itertools.product([0, 1], repeat=fanin)), dtype=np.uint8)
        compiled = compile_netlist(netlist)
        matrix, num_patterns = compiled.run_patterns(patterns)
        values = compiled.values_dict(matrix, num_patterns)
        for row, pattern in enumerate(patterns):
            assert values["y"][row] == evaluate_gate(gate_type, list(pattern))
        assert_engines_match(netlist, patterns)

    def test_mixed_gate_level_grouping(self):
        """Gates of every type at the same level share constant-padded groups."""
        netlist = Netlist("mixed")
        inputs = [netlist.add_input(f"i{k}") for k in range(4)]
        for gate_type in GateType:
            fanin = 1 if gate_type.max_inputs == 1 else 3
            netlist.add_gate(f"y_{gate_type.value}", gate_type, tuple(inputs[:fanin]))
            netlist.add_output(f"y_{gate_type.value}")
        patterns = np.array(list(itertools.product([0, 1], repeat=4)), dtype=np.uint8)
        assert_engines_match(netlist, patterns)


class TestRandomCircuitEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_netlists_match_reference(self, seed):
        netlist = generators.random_logic_circuit(
            f"rand{seed}", num_inputs=8, num_gates=70, num_outputs=6, seed=seed
        )
        rng = np.random.default_rng(seed)
        patterns = rng.integers(0, 2, size=(193, len(netlist.inputs)), dtype=np.uint8)
        assert_engines_match(netlist, patterns)

    def test_word_boundary_pattern_counts(self, c17):
        for num_patterns in (1, 63, 64, 65, 128):
            patterns = np.random.default_rng(num_patterns).integers(
                0, 2, size=(num_patterns, 5), dtype=np.uint8
            )
            assert_engines_match(c17, patterns)


class TestLibraryCircuitEquivalence:
    @pytest.mark.parametrize(
        "name", ["c17", "c2670_like", "c6288_like", "s13207_like"]
    )
    def test_library_circuits_match_reference(self, name):
        netlist = load_benchmark(name)
        compiled = compile_netlist(netlist)
        rng = np.random.default_rng(7)
        patterns = rng.integers(0, 2, size=(256, compiled.num_sources), dtype=np.uint8)
        assert_engines_match(netlist, patterns)

    def test_count_ones_matches_reference_engine(self):
        netlist = load_benchmark("c2670_like")
        reference = BitParallelSimulator(netlist, engine="reference").count_ones(777, seed=11)
        compiled = BitParallelSimulator(netlist, engine="compiled").count_ones(777, seed=11)
        assert reference == compiled

    def test_probability_estimation_unchanged_by_engine(self):
        netlist = load_benchmark("c17")
        estimated = estimate_signal_probabilities(netlist, num_patterns=2048, seed=5)
        counts = BitParallelSimulator(netlist, engine="reference").count_ones(2048, seed=5)
        for net, probability in estimated.items():
            assert probability == pytest.approx(counts[net] / 2048)


class TestCompileCache:
    def test_compile_is_cached_per_netlist(self, c17):
        assert compile_netlist(c17) is compile_netlist(c17)

    def test_mutation_invalidates_cache(self):
        netlist = generators.c17()
        first = compile_netlist(netlist)
        netlist.add_gate("extra", GateType.NOT, ("22",))
        second = compile_netlist(netlist)
        assert second is not first
        assert "extra" in second and "extra" not in first

    def test_rejects_sequential_netlists(self):
        sequential = generators.sequential_controller("s", state_bits=3, data_width=4)
        with pytest.raises(ValueError, match="full-scan"):
            CompiledNetlist(sequential)

    def test_unknown_net_raises_keyerror(self, c17):
        with pytest.raises(KeyError, match="does not exist"):
            compile_netlist(c17).index_of("no_such_net")

    def test_count_ones_zero_patterns_is_all_zero(self, c17):
        compiled = compile_netlist(c17)
        assert not compiled.count_ones(0, seed=0).any()
        shim_counts = BitParallelSimulator(c17, engine="reference").count_ones(0, seed=0)
        assert set(shim_counts.values()) == {0}

    def test_scoap_accepts_sequential_netlists(self):
        from repro.simulation.testability import scoap_testability

        sequential = generators.sequential_controller("seq", state_bits=3, data_width=4)
        measures = scoap_testability(sequential)
        for ff in sequential.flip_flops:
            assert measures[ff.q].cc0 == 1.0 and measures[ff.q].cc1 == 1.0


class TestPackingValidation:
    def test_pack_rejects_out_of_range_values(self):
        with pytest.raises(ValueError, match="0/1"):
            pack_patterns(np.array([[0, 2], [1, 0]]))

    def test_pack_rejects_negative_values(self):
        with pytest.raises(ValueError, match="0/1"):
            pack_patterns(np.array([[0, -1]]))

    def test_unpack_zero_patterns(self):
        assert unpack_values(np.zeros(1, dtype=np.uint64), 0).shape == (0,)
        packed, count = pack_patterns(np.zeros((0, 3), dtype=np.uint8))
        assert count == 0
        assert unpack_values(packed[0], count).size == 0

    def test_pack_unpack_roundtrip_odd_sizes(self):
        rng = np.random.default_rng(3)
        patterns = rng.integers(0, 2, size=(65, 9), dtype=np.uint8)
        packed, count = pack_patterns(patterns)
        assert packed.shape == (9, 2)
        for column in range(9):
            assert np.array_equal(unpack_values(packed[column], count), patterns[:, column])


class TestBatchedTrojanParity:
    def test_batched_matches_sequential_on_random_trojans(self, small_multiplier):
        """Batched verdicts equal the simulate-every-infected-netlist flow."""
        rare = extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=2048, seed=0)
        trojans = sample_trojans(
            small_multiplier, rare, num_trojans=32, trigger_width=2, seed=1
        )
        assert len(trojans) >= 30, "need a real population for the parity check"
        pattern_set = random_pattern_set(small_multiplier, num_patterns=512, seed=2)
        batched = trigger_coverage(small_multiplier, trojans, pattern_set)
        sequential = sequential_trigger_coverage(small_multiplier, trojans, pattern_set)
        assert batched.detected == sequential.detected
        assert batched.num_detected == sequential.num_detected
        assert batched.coverage == sequential.coverage

    def test_batched_matches_sequential_on_mixed_widths(self, small_multiplier):
        rare = extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=2048, seed=0)
        trojans = []
        for width, seed in ((1, 3), (2, 4), (3, 5)):
            trojans.extend(
                sample_trojans(
                    small_multiplier, rare, num_trojans=6, trigger_width=width, seed=seed
                )
            )
        pattern_set = random_pattern_set(small_multiplier, num_patterns=256, seed=6)
        batched = trigger_coverage(small_multiplier, trojans, pattern_set)
        sequential = sequential_trigger_coverage(small_multiplier, trojans, pattern_set)
        assert batched.detected == sequential.detected

    def test_empty_pattern_set_detects_nothing(self, small_multiplier):
        rare = extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=2048, seed=0)
        trojans = sample_trojans(
            small_multiplier, rare, num_trojans=5, trigger_width=2, seed=9
        )
        from repro.core.patterns import PatternSet

        empty = PatternSet.empty(small_multiplier, technique="none")
        batched = trigger_coverage(small_multiplier, trojans, empty)
        sequential = sequential_trigger_coverage(small_multiplier, trojans, empty)
        assert batched.detected == sequential.detected == [False] * len(trojans)

    def test_sequential_path_checks_source_ordering(self, small_multiplier, c17):
        rare = extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=2048, seed=0)
        trojans = sample_trojans(
            small_multiplier, rare, num_trojans=2, trigger_width=2, seed=9
        )
        mismatched = random_pattern_set(c17, num_patterns=4, seed=0)
        with pytest.raises(ValueError, match="source ordering"):
            sequential_trigger_coverage(small_multiplier, trojans, mismatched)
