"""Chaos suite for ``--backend queue``: the durable-queue execution backend.

The queue backend must compose with :func:`repro.runner.resilience
.run_tasks` exactly like the in-process pools — same results, same
retry/degradation behaviour — while adding a recovery layer of its own:
a crashed worker's job is *reclaimed* by a peer without the resilience
layer ever noticing.  Every scenario here drives real spawned
``deterrent queue-worker`` processes.

Carries the ``faults`` marker like ``test_backends_faults.py`` so CI can
run the chaos suites together (``pytest -m faults``).
"""

from __future__ import annotations

import threading

import pytest

import repro.runner.backends as backends_module
from repro.runner.backends import backend_names, register_backend, resolve_backend
from repro.runner.faults import FaultPlan
from repro.runner.resilience import ResiliencePolicy, run_tasks
from repro.service.queue import DurableQueue, WorkerOptions, worker_loop
from repro.service.queue_backend import QueueBackend, RemoteTaskError

pytestmark = pytest.mark.faults

#: Fast-retry policy so chaos scenarios do not sleep through real backoff.
FAST = ResiliencePolicy(backoff_base=0.01, backoff_cap=0.05)


def square(x):
    """Module-level task fn: picklable into worker processes."""
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


TASKS = [(i,) for i in range(6)]
EXPECTED = [i * i for i in range(6)]


def fast_backend(queue_dir=None, **overrides):
    """A QueueBackend tuned for tests: tight polling, quick crash detection."""
    options = {"workers": 2, "poll_interval": 0.02}
    options.update(overrides)
    return QueueBackend(queue_dir=queue_dir, **options)


class TestRegistry:
    def test_queue_backend_is_registered(self):
        assert "queue" in backend_names()
        backend = resolve_backend("queue")
        assert isinstance(backend, QueueBackend)
        assert backend.name == "queue"

    def test_capability_flags(self):
        assert QueueBackend.workers_are_processes is True
        assert QueueBackend.supports_timeout is True

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("queue", QueueBackend)

    def test_registered_extras_resolve_by_name(self):
        name = "queue-test-alias"
        register_backend(name, QueueBackend)
        try:
            assert name in backend_names()
            assert isinstance(resolve_backend(name), QueueBackend)
        finally:
            backends_module._BACKENDS.pop(name, None)

    def test_resolve_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("bogus-queue")


class TestComposition:
    def test_results_match_serial_reference(self):
        reference = run_tasks(square, TASKS, backend="serial").results
        outcome = run_tasks(
            square, TASKS, backend=fast_backend(), max_workers=2, policy=FAST,
        )
        assert outcome.results == reference == EXPECTED
        assert not outcome.had_failures
        assert outcome.backend == "queue" == outcome.final_backend
        assert outcome.crashes == outcome.timeouts == outcome.corrupt == 0

    def test_worker_failure_surfaces_as_remote_task_error(self):
        executor = fast_backend(workers=1).make_executor(1)
        try:
            future = executor.submit(boom, 3)
            with pytest.raises(RemoteTaskError, match="ValueError: boom 3"):
                future.result(timeout=30)
            error = future.exception()
            assert error.remote_type == "ValueError"
            assert "boom 3" in error.remote_traceback
        finally:
            executor.shutdown()

    def test_cancel_pending_withdraws_queued_work(self):
        executor = fast_backend(workers=0).make_executor(2)
        try:
            futures = [executor.submit(square, i) for i in range(4)]
            assert executor.queue.stats()["queued"] == 4
            executor.cancel_pending()
            assert executor.queue.stats()["queued"] == 0
            assert not any(future.done() for future in futures)
        finally:
            executor.shutdown()

    def test_external_workers_drain_a_shared_queue(self, tmp_path):
        """workers=0 + a shared queue_dir is the remote-fleet client mode."""
        queue_dir = tmp_path / "shared"
        backend = fast_backend(queue_dir=queue_dir, workers=0)
        worker = threading.Thread(
            target=lambda: worker_loop(
                DurableQueue(queue_dir), WorkerOptions(worker_id="ext", poll_interval=0.02)
            ),
            daemon=True,
        )
        worker.start()
        try:
            outcome = run_tasks(
                square, TASKS, backend=backend, max_workers=2, policy=FAST
            )
            assert outcome.results == EXPECTED
            assert not outcome.had_failures
        finally:
            DurableQueue(queue_dir).request_stop()
            worker.join(timeout=5.0)
        assert not worker.is_alive()
        liveness = DurableQueue(queue_dir).worker_liveness()
        assert liveness["ext"]["jobs_done"] == len(TASKS)


class TestChaos:
    """The ISSUE's queue-worker fault matrix: crash, hang, corrupt."""

    def test_crash_mid_lease_is_reclaimed_not_retried(self, tmp_path):
        """A worker crashing mid-lease is queue-level recovery: a peer
        reclaims the job and the resilience layer never sees a failure."""
        queue_dir = tmp_path / "q"
        outcome = run_tasks(
            square, TASKS,
            backend=fast_backend(queue_dir=queue_dir),
            max_workers=2,
            fault_plan=FaultPlan.crashing(1),
            policy=FAST,
        )
        assert outcome.results == EXPECTED
        # Invisible to the resilience layer: no crashes, no retry rounds.
        assert outcome.crashes == 0
        assert outcome.retries == 0
        assert not outcome.degraded
        # Visible in the queue's own telemetry: the job was redelivered.
        stats = DurableQueue(queue_dir).stats()
        assert stats["reclaims"] >= 1
        assert stats["done"] == len(TASKS)

    def test_hang_past_lease_is_stolen_by_a_peer(self, tmp_path):
        """A wedged task whose worker stops renewing (max_task_seconds) loses
        its lease and a peer finishes the job — no resilience timeout."""
        queue_dir = tmp_path / "q"
        outcome = run_tasks(
            square, TASKS,
            backend=fast_backend(
                queue_dir=queue_dir, lease_seconds=1.0, max_task_seconds=0.4,
            ),
            max_workers=2,
            fault_plan=FaultPlan.hanging(2, seconds=6.0),
            policy=FAST,  # no per-attempt timeout: the steal must resolve it
        )
        assert outcome.results == EXPECTED
        assert outcome.timeouts == 0
        assert not outcome.degraded
        stats = DurableQueue(queue_dir).stats()
        assert stats["reclaims"] >= 1

    def test_corrupt_before_ack_is_rejected_and_retried(self, tmp_path):
        """A corrupt result is acked by the queue (the worker completed) but
        rejected by the resilience validator, which retries under a fresh
        job id — this leg of recovery belongs to the submitting side."""
        queue_dir = tmp_path / "q"
        outcome = run_tasks(
            square, TASKS,
            backend=fast_backend(queue_dir=queue_dir),
            max_workers=2,
            fault_plan=FaultPlan.corrupting(0),
            policy=FAST,
        )
        assert outcome.results == EXPECTED
        assert outcome.corrupt == 1
        assert outcome.retries >= 1
        assert not outcome.degraded
        # Both the corrupt attempt and the retry ran to completion: the
        # queue acked each delivered job exactly once, no reclaims needed.
        stats = DurableQueue(queue_dir).stats()
        assert stats["reclaims"] == 0
        assert stats["done"] == len(TASKS) + 1


class TestDegradation:
    def test_respawn_exhaustion_degrades_to_serial(self):
        """A task that kills every worker that touches it exhausts the
        respawn budget, breaks the executor, and the run falls back to the
        serial backend — where the queue-only fault plan no longer fires."""
        plan = FaultPlan.crashing(0, attempts=99, only_backend="queue")
        outcome = run_tasks(
            square, TASKS[:3],
            backend=fast_backend(workers=1, respawns=1),
            max_workers=1,
            fault_plan=plan,
            policy=ResiliencePolicy(max_attempts=2, backoff_base=0.01),
        )
        assert outcome.results == EXPECTED[:3]
        assert outcome.degraded
        assert outcome.backend == "queue"
        assert outcome.final_backend == "serial"
        assert outcome.crashes >= 1
