"""Documentation health: intra-repo links and docs/registry agreement."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _link_checker():
    """Import scripts/check_doc_links.py as a module (it is not packaged)."""
    path = REPO_ROOT / "scripts" / "check_doc_links.py"
    spec = importlib.util.spec_from_file_location("check_doc_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocLinks:
    def test_docs_pages_exist(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "experiments.md").is_file()

    def test_readme_links_the_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/experiments.md" in readme

    def test_no_broken_intra_repo_links(self):
        checker = _link_checker()
        files = checker.doc_files(REPO_ROOT)
        assert len(files) >= 3  # README + the two docs pages
        assert checker.broken_links(REPO_ROOT) == []

    def test_checker_flags_a_broken_link(self, tmp_path):
        checker = _link_checker()
        (tmp_path / "README.md").write_text(
            "[ok](docs/page.md) [bad](missing.md) [web](https://example.com)"
        )
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text("[up](../README.md#anchor)")
        broken = checker.broken_links(tmp_path)
        assert [target for _, target in broken] == ["missing.md"]


class TestDocsMatchRegistry:
    def test_every_registered_harness_is_documented(self):
        from repro.runner.registry import all_experiments

        text = (REPO_ROOT / "docs" / "experiments.md").read_text()
        for spec in all_experiments():
            assert f"`{spec.name}`" in text, f"{spec.name} missing from docs/experiments.md"
