"""Tests for the baseline techniques (Random, ATPG proxy, MERO, TARMAC, TGRL)."""

import numpy as np
import pytest

from repro.baselines.atpg import atpg_pattern_set
from repro.baselines.mero import MeroConfig, mero_pattern_set
from repro.baselines.random_patterns import random_pattern_set
from repro.baselines.tarmac import TarmacConfig, sample_maximal_clique, tarmac_pattern_set
from repro.baselines.tgrl import TgrlConfig, TgrlEnv, tgrl_pattern_set
from repro.rl.ppo import PpoConfig
from repro.simulation.logic_sim import BitParallelSimulator, simulate_pattern
from repro.trojan.evaluation import trigger_coverage
from repro.trojan.insertion import sample_trojans
from repro.utils.rng import make_rng


class TestRandomPatterns:
    def test_shape_and_technique(self, small_multiplier):
        pattern_set = random_pattern_set(small_multiplier, 17, seed=0)
        assert len(pattern_set) == 17
        assert pattern_set.technique == "Random"
        assert pattern_set.patterns.shape[1] == len(small_multiplier.combinational_sources())

    def test_deterministic_for_seed(self, small_multiplier):
        first = random_pattern_set(small_multiplier, 8, seed=5)
        second = random_pattern_set(small_multiplier, 8, seed=5)
        assert np.array_equal(first.patterns, second.patterns)

    def test_negative_count_rejected(self, small_multiplier):
        with pytest.raises(ValueError):
            random_pattern_set(small_multiplier, -1)


class TestAtpgProxy:
    def test_every_rare_net_individually_activated(self, small_multiplier, multiplier_compatibility):
        rare = multiplier_compatibility.rare_nets
        pattern_set = atpg_pattern_set(small_multiplier, rare,
                                       justifier=multiplier_compatibility.justifier,
                                       compact=False)
        simulator = BitParallelSimulator(small_multiplier)
        values = simulator.run_patterns(pattern_set.patterns)
        for item in rare:
            activated = (values[item.net] == item.rare_value).any()
            assert activated, f"rare net {item.net} never activated"

    def test_compaction_reduces_or_preserves_length(self, small_multiplier, multiplier_compatibility):
        rare = multiplier_compatibility.rare_nets
        full = atpg_pattern_set(small_multiplier, rare,
                                justifier=multiplier_compatibility.justifier, compact=False)
        compact = atpg_pattern_set(small_multiplier, rare,
                                   justifier=multiplier_compatibility.justifier, compact=True)
        assert len(compact) <= len(full)
        assert len(compact) >= 1


class TestMero:
    def test_returns_patterns_that_hit_rare_nets(self, small_multiplier, multiplier_compatibility):
        rare = multiplier_compatibility.rare_nets
        pattern_set = mero_pattern_set(
            small_multiplier, rare,
            MeroConfig(num_random_patterns=64, n_detect=2, seed=0),
        )
        assert pattern_set.technique == "MERO"
        assert len(pattern_set) >= 1
        simulator = BitParallelSimulator(small_multiplier)
        values = simulator.run_patterns(pattern_set.patterns)
        activated = sum(
            (values[item.net] == item.rare_value).any() for item in rare
        )
        assert activated > 0

    def test_empty_rare_net_list(self, small_multiplier):
        assert len(mero_pattern_set(small_multiplier, [])) == 0


class TestTarmac:
    def test_sampled_clique_is_pairwise_compatible(self, multiplier_compatibility):
        rng = make_rng(0)
        clique = sample_maximal_clique(multiplier_compatibility, rng)
        members = sorted(clique)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert multiplier_compatibility.compatible(a, b)

    def test_clique_is_maximal(self, multiplier_compatibility):
        rng = make_rng(1)
        clique = sample_maximal_clique(multiplier_compatibility, rng)
        for candidate in range(multiplier_compatibility.num_rare_nets):
            if candidate in clique:
                continue
            assert not multiplier_compatibility.compatible_with_all(candidate, clique)

    def test_pattern_set_generated_per_distinct_clique(self, multiplier_compatibility):
        pattern_set = tarmac_pattern_set(multiplier_compatibility,
                                         TarmacConfig(num_cliques=20, seed=0))
        assert pattern_set.technique == "TARMAC"
        assert 1 <= len(pattern_set) <= 20
        assert pattern_set.metadata["num_distinct_cliques"] == len(pattern_set)

    def test_patterns_activate_their_cliques(self, small_multiplier, multiplier_compatibility):
        pattern_set = tarmac_pattern_set(multiplier_compatibility,
                                         TarmacConfig(num_cliques=5, seed=2))
        sizes = pattern_set.metadata["set_sizes"]
        assert all(size >= 1 for size in sizes)
        first = dict(zip(pattern_set.sources, pattern_set.patterns[0]))
        simulated = simulate_pattern(small_multiplier, first)
        activated = sum(
            simulated[item.net] == item.rare_value
            for item in multiplier_compatibility.rare_nets
        )
        assert activated >= sizes[0]


class TestTgrl:
    def _config(self):
        return TgrlConfig(
            total_training_steps=128, episode_length=8, num_envs=1, max_patterns=256,
            ppo=PpoConfig(num_steps=32, minibatch_size=32, hidden_sizes=(16,), num_epochs=1),
            seed=0,
        )

    def test_environment_flips_exactly_one_bit(self, small_multiplier, multiplier_compatibility):
        simulator = BitParallelSimulator(small_multiplier)
        weights = np.ones(len(multiplier_compatibility.rare_nets))
        env = TgrlEnv(simulator, multiplier_compatibility.rare_nets, weights, 8, seed=0)
        before = env.reset().copy()
        result = env.step(0)
        assert abs(result.observation - before).sum() == 1

    def test_reward_counts_weighted_rare_activations(self, small_multiplier, multiplier_compatibility):
        simulator = BitParallelSimulator(small_multiplier)
        rare = multiplier_compatibility.rare_nets
        weights = np.ones(len(rare))
        env = TgrlEnv(simulator, rare, weights, 8, seed=0)
        env.reset()
        result = env.step(1)
        assignment = dict(zip(simulator.sources, result.observation.astype(int)))
        simulated = simulate_pattern(small_multiplier, assignment)
        expected = sum(simulated[item.net] == item.rare_value for item in rare)
        assert result.reward == pytest.approx(expected)

    def test_pattern_set_collects_visited_patterns(self, small_multiplier, multiplier_compatibility):
        pattern_set = tgrl_pattern_set(
            small_multiplier, multiplier_compatibility.rare_nets, self._config()
        )
        assert pattern_set.technique == "TGRL"
        assert len(pattern_set) > 0
        assert len(pattern_set) <= 256

    def test_empty_rare_nets_gives_empty_set(self, small_multiplier):
        assert len(tgrl_pattern_set(small_multiplier, [], self._config())) == 0


class TestRelativeBehaviour:
    def test_targeted_techniques_beat_random_at_equal_budget(
        self, small_multiplier, multiplier_compatibility
    ):
        """The paper's qualitative claim: clique/set-based patterns beat random ones."""
        trojans = sample_trojans(
            small_multiplier, multiplier_compatibility.rare_nets,
            num_trojans=30, trigger_width=3, seed=11,
            justifier=multiplier_compatibility.justifier,
        )
        tarmac = tarmac_pattern_set(multiplier_compatibility, TarmacConfig(num_cliques=40, seed=0))
        random_set = random_pattern_set(small_multiplier, len(tarmac), seed=0)
        tarmac_cov = trigger_coverage(small_multiplier, trojans, tarmac).coverage
        random_cov = trigger_coverage(small_multiplier, trojans, random_set).coverage
        assert tarmac_cov >= random_cov
