"""Tests for the experiment harnesses (tiny scale) and shared utilities."""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.reporting import append_jsonl, format_table, load_jsonl, save_json
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch

#: A deliberately tiny profile so harness tests finish in seconds.
TINY = common.ExperimentProfile(
    name="quick",  # reuse quick design lists
    num_trojans=12,
    trigger_width=3,
    training_steps=256,
    tgrl_training_steps=128,
    k_patterns=16,
    num_cliques=12,
    num_probability_patterns=512,
    num_envs=2,
    episode_length=12,
    seed=0,
)


@pytest.fixture(scope="module")
def tiny_context():
    common.clear_context_cache()
    return common.prepare_benchmark("c6288_like", TINY, threshold=0.15)


class TestUtils:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_from_seed_reproducible(self):
        assert make_rng(3).integers(1000) == make_rng(3).integers(1000)

    def test_spawn_rngs_independent(self):
        first, second = spawn_rngs(0, 2)
        assert first.integers(10**6) != second.integers(10**6) or True  # streams differ
        assert len(spawn_rngs(1, 5)) == 5

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_stopwatch_rates(self):
        watch = Stopwatch().start()
        watch.stop()
        assert watch.rate_per_minute(0) == 0.0
        assert watch.elapsed >= 0.0
        watch.lap("phase")
        assert "phase" in watch.laps


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text
        assert "—" in text

    def test_format_table_pads_ragged_rows(self):
        # Regression: rows shorter than the header list used to raise
        # IndexError; they must render with em-dash padding instead.
        text = format_table(["a", "b", "c"], [[1], [1, 2], [1, 2, 3]])
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[2].split() == ["1", "—", "—"]
        assert lines[3].split() == ["1", "2", "—"]
        assert lines[4].split() == ["1", "2", "3"]

    def test_format_table_rejects_overlong_rows(self):
        with pytest.raises(ValueError, match="row 1 has 3 cells"):
            format_table(["a", "b"], [[1, 2], [1, 2, 3]])

    def test_format_table_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert len(text.splitlines()) == 2

    def test_save_json_creates_directories(self, tmp_path):
        path = save_json({"x": 1}, tmp_path / "nested" / "out.json")
        assert path.exists()
        assert "\"x\": 1" in path.read_text()

    def test_append_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "stream" / "cells.jsonl"
        append_jsonl({"cell": "a", "value": 1}, path)
        append_jsonl({"cell": "b", "value": 2}, path)
        records = load_jsonl(path)
        assert [record["cell"] for record in records] == ["a", "b"]


class TestCommon:
    def test_profiles_lookup(self):
        assert common.profile_by_name("tiny") is common.TINY
        assert common.profile_by_name("quick") is common.QUICK
        assert common.profile_by_name("full") is common.FULL
        with pytest.raises(KeyError):
            common.profile_by_name("gigantic")

    def test_prepare_benchmark_caches(self):
        common.clear_context_cache()
        first = common.prepare_benchmark("c6288_like", TINY, threshold=0.15)
        second = common.prepare_benchmark("c6288_like", TINY, threshold=0.15)
        assert first is second

    def test_context_contains_valid_trojans(self, tiny_context):
        assert tiny_context.num_rare_nets > 0
        assert tiny_context.trojans
        for trojan in tiny_context.trojans:
            assert trojan.width == TINY.trigger_width

    def test_paper_table2_reference_complete(self):
        assert set(common.PAPER_TABLE2) == {
            "c2670", "c5315", "c6288", "c7552", "s13207", "s15850", "s35932", "MIPS",
        }
        for values in common.PAPER_TABLE2.values():
            assert "DETERRENT" in values


class TestHarnesses:
    def test_table2_single_design(self, tiny_context):
        from repro.experiments import table2

        row = table2.run_design(tiny_context, TINY, techniques=("Random", "ATPG", "DETERRENT"))
        assert set(row.outcomes) == {"Random", "ATPG", "DETERRENT"}
        deterrent = row.outcomes["DETERRENT"]
        assert deterrent.test_length > 0
        assert 0.0 <= deterrent.coverage_percent <= 100.0
        report = table2.report([row])
        assert "DETERRENT" in report

    def test_table2_reduction_metric(self, tiny_context):
        from repro.experiments import table2

        row = table2.Table2Row(design="d", paper_design="c6288", num_rare_nets=1, num_gates=1)
        row.outcomes = {
            "DETERRENT": table2.TechniqueOutcome("DETERRENT", 10, 90.0),
            "TARMAC": table2.TechniqueOutcome("TARMAC", 100, 80.0),
            "TGRL": table2.TechniqueOutcome("TGRL", 300, 85.0),
        }
        assert table2.reduction_vs_baselines([row]) == pytest.approx(20.0)

    def test_table1_reward_mode_comparison(self):
        from repro.experiments import table1

        results = table1.run(design="c6288_like", profile=TINY)
        assert set(results) == {"per_step", "end_of_episode"}
        for outcome in results.values():
            assert outcome.max_compatible >= 1
            assert outcome.steps_per_minute > 0
        assert "Improvement" in table1.report(results)

    def test_figure3_exploration_comparison(self):
        from repro.experiments import figure3

        results = figure3.run(design="c6288_like", profile=TINY)
        assert set(results) == {"default", "boosted"}
        assert results["boosted"].loss_history
        assert "boosted" in figure3.report(results)

    def test_figure6_curves(self, tiny_context):
        from repro.experiments import figure6

        curves = figure6.run(designs=("c6288_like",), profile=TINY)
        assert len(curves) == 1
        result = curves[0]
        assert result.deterrent_curve
        coverages = [c for _, c in result.deterrent_curve]
        assert coverages == sorted(coverages)
        assert result.patterns_to_reach(0.0) == 1

    def test_figure7_threshold_sweep(self):
        from repro.experiments import figure7

        points = figure7.run(design="c6288_like", thresholds=(0.12, 0.15), profile=TINY)
        assert len(points) == 2
        assert points[0].num_rare_nets <= points[1].num_rare_nets

    def test_transfer_experiment(self):
        from repro.experiments import transfer

        result = transfer.run(design="c6288_like", train_threshold=0.15,
                              eval_threshold=0.12, profile=TINY)
        assert result.train_rare_nets >= result.eval_rare_nets
        assert 0.0 <= result.coverage_percent <= 100.0
        assert "coverage" in transfer.report(result)
