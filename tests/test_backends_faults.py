"""Chaos suite for the execution backends and the resilience layer.

Every recovery path the runner claims to have is provoked here with a
scripted :class:`~repro.runner.faults.FaultPlan` — worker crashes (real
``os._exit`` under the process backend, :class:`SimulatedCrash` elsewhere),
hangs past the per-attempt timeout, corrupt results, and raised errors —
and every recovered run is checked bit-identical to the serial reference.

The suite carries the ``faults`` marker so CI can run it in its own job
(``pytest -m faults``); it also runs in the default tier-1 sweep.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.reporting import resilience_summary
from repro.runner.backends import (
    BACKEND_NAMES,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.runner.execution import ExperimentRunner
from repro.runner.faults import (
    CRASH_EXIT_CODE,
    CorruptResult,
    FaultPlan,
    FaultRule,
    SimulatedCrash,
    clear_fault_plan,
    install_fault_plan,
    maybe_inject,
)
from repro.runner.resilience import (
    ResilienceError,
    ResiliencePolicy,
    backoff_delay,
    run_tasks,
)

pytestmark = pytest.mark.faults

#: Fast-retry policy so chaos scenarios do not sleep through real backoff.
FAST = ResiliencePolicy(backoff_base=0.01, backoff_cap=0.05)


def square(x):
    """Module-level task fn: picklable for the process backend."""
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


TASKS = [(i,) for i in range(6)]
EXPECTED = [i * i for i in range(6)]


def run_record_cells(run):
    """A run record's cells with wall-clock timing stripped.

    "Bit-identical" for recovered runs means identical results and
    parameters; elapsed seconds legitimately differ per execution.
    """
    return [
        {key: value for key, value in cell.items() if key != "elapsed_seconds"}
        for cell in run.record()["cells"]
    ]


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_all_backends_agree_with_serial(self):
        reference = run_tasks(square, TASKS, backend="serial").results
        assert reference == EXPECTED
        for name in BACKEND_NAMES:
            outcome = run_tasks(square, TASKS, backend=name, max_workers=3)
            assert outcome.results == reference, name
            assert not outcome.had_failures
            assert outcome.backend == name == outcome.final_backend

    def test_resolve_backend_defaults_follow_job_count(self):
        assert resolve_backend(None, jobs=1).name == "serial"
        assert resolve_backend(None, jobs=None).name == "serial"
        assert resolve_backend(None, jobs=4).name == "process"

    def test_resolve_backend_accepts_instance_and_name(self):
        backend = ThreadPoolBackend()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)

    def test_resolve_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("bogus")

    def test_serial_executor_mirrors_initializer_failure_into_future(self):
        def bad_init():
            raise RuntimeError("init failed")

        executor = SerialBackend().make_executor(1, bad_init, ())
        future = executor.submit(square, 3)
        with pytest.raises(RuntimeError, match="init failed"):
            future.result()

    def test_backend_capability_flags(self):
        assert SerialBackend.workers_are_processes is False
        assert SerialBackend.supports_timeout is False
        assert ProcessPoolBackend.workers_are_processes is True
        assert ProcessPoolBackend.supports_timeout is True
        assert ThreadPoolBackend.workers_are_processes is False
        assert ThreadPoolBackend.supports_timeout is True


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_plan_survives_pickle(self):
        plan = FaultPlan.crashing(1, 3, attempts=2, only_backend="process")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.rule_for(3, 2, "process") is not None

    def test_rules_key_on_task_attempt_and_backend(self):
        rule = FaultRule(2, "crash", attempts=2, only_backend="thread")
        assert rule.matches(2, 1, "thread")
        assert rule.matches(2, 2, "thread")
        assert not rule.matches(2, 3, "thread")  # attempts exhausted
        assert not rule.matches(1, 1, "thread")  # other task
        assert not rule.matches(2, 1, "process")  # other backend

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultRule(0, "explode")
        with pytest.raises(ValueError, match="task_index"):
            FaultRule(-1, "crash")
        with pytest.raises(ValueError, match="attempts"):
            FaultRule(0, "crash", attempts=0)
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultRule(0, "hang", hang_seconds=-1.0)

    def test_maybe_inject_without_plan_is_a_no_op(self):
        clear_fault_plan()
        assert maybe_inject(0, 1) is None

    def test_crash_is_simulated_outside_worker_processes(self):
        install_fault_plan(FaultPlan.crashing(0), "thread", workers_are_processes=False)
        try:
            with pytest.raises(SimulatedCrash):
                maybe_inject(0, 1)
        finally:
            clear_fault_plan()

    def test_corrupt_and_error_injection(self):
        plan = FaultPlan(
            (FaultRule(0, "corrupt"), FaultRule(1, "error"))
        )
        install_fault_plan(plan, "serial", workers_are_processes=False)
        try:
            assert maybe_inject(0, 1) == CorruptResult(task_index=0, attempt=1)
            with pytest.raises(RuntimeError, match="injected error"):
                maybe_inject(1, 1)
            assert maybe_inject(2, 1) is None
        finally:
            clear_fault_plan()


# ----------------------------------------------------------------------
# Deterministic backoff
# ----------------------------------------------------------------------
class TestBackoff:
    def test_delay_is_a_pure_function_of_seed_and_attempt(self):
        policy = ResiliencePolicy(backoff_base=0.1, backoff_cap=1.0)
        first = [backoff_delay(policy, seed=41, attempt=a) for a in range(1, 6)]
        again = [backoff_delay(policy, seed=41, attempt=a) for a in range(1, 6)]
        assert first == again

    def test_first_attempt_never_waits(self):
        assert backoff_delay(ResiliencePolicy(), seed=7, attempt=1) == 0.0

    def test_delay_grows_exponentially_within_jitter_bounds(self):
        policy = ResiliencePolicy(backoff_base=0.1, backoff_cap=100.0)
        for attempt in range(2, 7):
            base = 0.1 * 2 ** (attempt - 2)
            delay = backoff_delay(policy, seed=3, attempt=attempt)
            assert base * 0.5 <= delay < base * 1.5

    def test_cap_bounds_every_delay(self):
        policy = ResiliencePolicy(backoff_base=1.0, backoff_cap=2.0)
        assert backoff_delay(policy, seed=0, attempt=10) < 2.0 * 1.5

    def test_distinct_seeds_jitter_differently(self):
        policy = ResiliencePolicy(backoff_base=1.0, backoff_cap=100.0)
        delays = {backoff_delay(policy, seed=s, attempt=3) for s in range(8)}
        assert len(delays) > 1


# ----------------------------------------------------------------------
# Recovery paths, per backend
# ----------------------------------------------------------------------
class TestRecovery:
    def test_process_backend_recovers_from_real_worker_crashes(self):
        outcome = run_tasks(
            square, TASKS, backend="process", max_workers=3,
            fault_plan=FaultPlan.crashing(1, 4), policy=FAST,
        )
        assert outcome.results == EXPECTED
        assert outcome.crashes >= 2
        assert outcome.retries >= 2
        assert not outcome.degraded

    def test_thread_backend_recovers_from_simulated_crashes(self):
        outcome = run_tasks(
            square, TASKS, backend="thread", max_workers=2,
            fault_plan=FaultPlan.crashing(0, 5), policy=FAST,
        )
        assert outcome.results == EXPECTED
        assert outcome.crashes == 2

    def test_hang_past_timeout_is_abandoned_and_retried(self):
        outcome = run_tasks(
            square, TASKS, backend="process", max_workers=2,
            fault_plan=FaultPlan.hanging(2, seconds=10.0),
            policy=ResiliencePolicy(timeout=1.0, backoff_base=0.01),
        )
        assert outcome.results == EXPECTED
        assert outcome.timeouts >= 1

    def test_thread_backend_timeout_recovery(self):
        outcome = run_tasks(
            square, TASKS, backend="thread", max_workers=2,
            fault_plan=FaultPlan.hanging(0, seconds=5.0),
            policy=ResiliencePolicy(timeout=0.5, backoff_base=0.01),
        )
        assert outcome.results == EXPECTED
        assert outcome.timeouts >= 1

    def test_corrupt_results_are_rejected_and_retried(self):
        for backend in BACKEND_NAMES:
            outcome = run_tasks(
                square, TASKS, backend=backend, max_workers=2,
                fault_plan=FaultPlan.corrupting(0, 3), policy=FAST,
            )
            assert outcome.results == EXPECTED, backend
            assert outcome.corrupt == 2, backend
            assert not any(
                isinstance(result, CorruptResult) for result in outcome.results
            )

    def test_validator_rejection_counts_as_corrupt(self):
        rejected_once = []

        def validate(index, value):
            if index == 1 and not rejected_once:
                rejected_once.append(index)
                return False
            return True

        outcome = run_tasks(
            square, TASKS, backend="serial",
            policy=ResiliencePolicy(validate=validate, backoff_base=0.0),
        )
        assert outcome.results == EXPECTED
        assert outcome.corrupt == 1

    def test_serial_backend_ignores_timeout(self):
        outcome = run_tasks(
            square, TASKS, backend="serial",
            fault_plan=FaultPlan.hanging(0, seconds=0.2),
            policy=ResiliencePolicy(timeout=0.05),
        )
        assert outcome.results == EXPECTED
        assert outcome.timeouts == 0

    def test_error_faults_retry_then_succeed(self):
        outcome = run_tasks(
            square, TASKS, backend="serial",
            fault_plan=FaultPlan((FaultRule(3, "error"),)),
            policy=ResiliencePolicy(backoff_base=0.0),
        )
        assert outcome.results == EXPECTED
        assert outcome.errors == 1
        assert outcome.failures[3][0].startswith("attempt 1 on serial: error")

    def test_permanent_failure_raises_with_attempt_history(self):
        with pytest.raises(ResilienceError) as excinfo:
            run_tasks(
                boom, TASKS[:2], backend="serial",
                policy=ResiliencePolicy(max_attempts=2, backoff_base=0.0),
            )
        failures = excinfo.value.failures
        assert set(failures) == {0, 1}
        assert len(failures[0]) == 2

    def test_results_keep_submission_order_after_recovery(self):
        outcome = run_tasks(
            square, TASKS, backend="process", max_workers=3,
            fault_plan=FaultPlan.crashing(0, 2, 4), policy=FAST,
        )
        assert outcome.results == EXPECTED

    def test_empty_task_list(self):
        outcome = run_tasks(square, [], backend="process")
        assert outcome.results == []
        assert outcome.rounds == 0

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            run_tasks(square, TASKS, seeds=[1, 2])


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_exhausted_task_on_pooled_backend_degrades_to_serial(self):
        plan = FaultPlan.crashing(0, attempts=99, only_backend="process")
        outcome = run_tasks(
            square, TASKS, backend="process", max_workers=2,
            fault_plan=plan, policy=ResiliencePolicy(max_attempts=2, backoff_base=0.01),
        )
        assert outcome.results == EXPECTED
        assert outcome.degraded
        assert outcome.backend == "process"
        assert outcome.final_backend == "serial"
        assert "exhausted" in outcome.degraded_reason

    def test_consecutive_bad_rounds_trigger_degradation(self):
        plan = FaultPlan.crashing(1, attempts=99, only_backend="thread")
        outcome = run_tasks(
            square, TASKS, backend="thread", max_workers=2, fault_plan=plan,
            policy=ResiliencePolicy(
                max_attempts=10, max_backend_failures=2, backoff_base=0.01
            ),
        )
        assert outcome.results == EXPECTED
        assert outcome.degraded
        assert "consecutive failing rounds" in outcome.degraded_reason

    def test_degraded_run_still_fails_when_serial_also_fails(self):
        plan = FaultPlan.crashing(0, attempts=99)  # every backend, forever
        with pytest.raises(ResilienceError):
            run_tasks(
                square, TASKS, backend="thread", max_workers=2, fault_plan=plan,
                policy=ResiliencePolicy(max_attempts=2, backoff_base=0.0),
            )

    def test_counters_roundtrip_into_summary_line(self):
        plan = FaultPlan.crashing(0, attempts=99, only_backend="thread")
        outcome = run_tasks(
            square, TASKS, backend="thread", max_workers=2, fault_plan=plan,
            policy=ResiliencePolicy(max_attempts=2, backoff_base=0.0),
        )
        line = resilience_summary(outcome.counters())
        assert "backend=thread" in line
        assert "retries=" in line
        assert "crashes=" in line
        assert "degraded to serial" in line

    def test_clean_summary_line(self):
        outcome = run_tasks(square, TASKS, backend="serial")
        assert resilience_summary(outcome.counters()) == "execution: backend=serial, clean"
        assert resilience_summary(None) == "execution: no resilience data"


# ----------------------------------------------------------------------
# The runner end to end (the ISSUE's acceptance scenario)
# ----------------------------------------------------------------------
OPTS = {"cycles": [2, 3], "counts": [2]}  # 4 grid cells on the tiny profile


class TestRunnerUnderFaults:
    def test_crashed_workers_do_not_change_run_results(self, tmp_path):
        """sequential_detect, 4 cells, jobs=4, two cells crash their worker
        mid-run: the recovered run record is bit-identical to the serial
        reference and carries the retry counters."""
        cache = str(tmp_path / "cache")
        serial = ExperimentRunner(jobs=1, cache_dir=cache).run(
            "sequential_detect", profile="tiny", options=OPTS
        )
        faulted = ExperimentRunner(
            jobs=4,
            cache_dir=cache,
            backend="process",
            resilience=FAST,
            fault_plan=FaultPlan.crashing(0, 2),
        ).run("sequential_detect", profile="tiny", options=OPTS)

        assert run_record_cells(faulted) == run_record_cells(serial)
        record = faulted.record()
        assert record["backend"] == "process"
        assert record["resilience"]["crashes"] >= 2
        assert record["resilience"]["retries"] >= 2
        assert record["resilience"]["degraded"] is False
        assert serial.record()["resilience"]["crashes"] == 0

    def test_runner_degrades_to_serial_and_finishes(self, tmp_path):
        # transfer/tiny has a single grid cell (index 0); crashing it on
        # every process-backend attempt forces the downgrade path.
        plan = FaultPlan.crashing(0, attempts=99, only_backend="process")
        run = ExperimentRunner(
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
            backend="process",
            resilience=ResiliencePolicy(max_attempts=2, backoff_base=0.01),
            fault_plan=plan,
        ).run("transfer", profile="tiny")
        record = run.record()
        assert record["resilience"]["degraded"] is True
        assert record["resilience"]["final_backend"] == "serial"
        assert len(record["cells"]) == len(run.outcomes) >= 1

    def test_thread_backend_runner_matches_serial(self, tmp_path):
        cache = str(tmp_path / "cache")
        serial = ExperimentRunner(jobs=1, cache_dir=cache).run(
            "transfer", profile="tiny"
        )
        threaded = ExperimentRunner(jobs=2, cache_dir=cache, backend="thread").run(
            "transfer", profile="tiny"
        )
        assert run_record_cells(threaded) == run_record_cells(serial)
        assert threaded.record()["backend"] == "thread"


# ----------------------------------------------------------------------
# The sharded SAT paths under faults
# ----------------------------------------------------------------------
class TestShardedPathsUnderFaults:
    def test_activatability_identical_under_crashing_workers(self):
        from repro.circuits.library import load_benchmark
        from repro.runner.parallel import parallel_activatability, serial_activatability
        from repro.sat.justify import Justifier
        from repro.simulation.rare_nets import extract_rare_nets

        netlist = load_benchmark("c17")
        rare = extract_rare_nets(netlist, threshold=0.3, num_patterns=64, seed=0)
        requirements = [(r.net, r.rare_value) for r in rare]
        assert requirements, "c17 must expose at least one rare net at 0.3"

        reference = serial_activatability(Justifier(netlist), requirements)
        faulted = parallel_activatability(
            netlist, requirements, n_jobs=2,
            backend="thread",
            resilience=FAST,
            fault_plan=FaultPlan.crashing(0),
        )
        assert faulted == reference
