"""Unit tests for the Netlist container."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist


def build_simple():
    netlist = Netlist("simple")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("n1", GateType.AND, ("a", "b"))
    netlist.add_gate("n2", GateType.NOT, ("n1",))
    netlist.add_output("n2")
    return netlist


class TestConstruction:
    def test_counts(self):
        netlist = build_simple()
        assert netlist.num_gates == 2
        assert len(netlist.inputs) == 2
        assert len(netlist.outputs) == 1
        assert not netlist.is_sequential

    def test_duplicate_input_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(ValueError, match="duplicate"):
            netlist.add_input("a")

    def test_duplicate_driver_rejected(self):
        netlist = build_simple()
        with pytest.raises(ValueError, match="already has a driver"):
            netlist.add_gate("n1", GateType.OR, ("a", "b"))

    def test_gate_driving_input_rejected(self):
        netlist = build_simple()
        with pytest.raises(ValueError, match="already has a driver"):
            netlist.add_gate("a", GateType.OR, ("n1", "b"))

    def test_duplicate_output_rejected(self):
        netlist = build_simple()
        with pytest.raises(ValueError, match="duplicate"):
            netlist.add_output("n2")

    def test_flip_flop_creates_driver(self):
        netlist = Netlist()
        netlist.add_input("d")
        netlist.add_flip_flop("q", "d")
        assert netlist.is_sequential
        assert netlist.has_driver("q")
        with pytest.raises(ValueError):
            netlist.add_gate("q", GateType.NOT, ("d",))

    def test_remove_gate(self):
        netlist = build_simple()
        netlist.remove_gate("n2")
        assert netlist.num_gates == 1
        with pytest.raises(KeyError):
            netlist.remove_gate("n2")


class TestQueries:
    def test_topological_order_respects_dependencies(self):
        netlist = build_simple()
        order = [gate.output for gate in netlist.topological_gates()]
        assert order.index("n1") < order.index("n2")

    def test_levels(self):
        netlist = build_simple()
        levels = netlist.levels()
        assert levels["a"] == 0
        assert levels["n1"] == 1
        assert levels["n2"] == 2
        assert netlist.depth == 2

    def test_fanout_map(self):
        netlist = build_simple()
        fanout = netlist.fanout_map()
        assert fanout["a"] == ("n1",)
        assert fanout["n1"] == ("n2",)
        assert fanout["n2"] == ()

    def test_cycle_detection(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("x", GateType.AND, ("a", "y"))
        netlist.add_gate("y", GateType.OR, ("x", "a"))
        with pytest.raises(ValueError, match="cycle"):
            netlist.topological_gates()

    def test_transitive_fanin(self):
        netlist = build_simple()
        cone = netlist.transitive_fanin("n2")
        assert cone == {"n2", "n1", "a", "b"}

    def test_nets_lists_all_driven_nets(self):
        netlist = build_simple()
        assert set(netlist.nets) == {"a", "b", "n1", "n2"}

    def test_combinational_sources_include_flip_flop_outputs(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_flip_flop("q", "a")
        assert set(netlist.combinational_sources()) == {"a", "q"}

    def test_is_input_is_output(self):
        netlist = build_simple()
        assert netlist.is_input("a")
        assert not netlist.is_input("n1")
        assert netlist.is_output("n2")
        assert not netlist.is_output("n1")

    def test_gate_for(self):
        netlist = build_simple()
        assert netlist.gate_for("n1").gate_type is GateType.AND
        assert netlist.gate_for("a") is None

    def test_repr_mentions_counts(self):
        text = repr(build_simple())
        assert "gates=2" in text
        assert "inputs=2" in text


class TestCopy:
    def test_copy_is_structurally_identical(self):
        netlist = build_simple()
        clone = netlist.copy()
        assert clone.inputs == netlist.inputs
        assert clone.outputs == netlist.outputs
        assert {g.output for g in clone.gates} == {g.output for g in netlist.gates}

    def test_copy_is_independent(self):
        netlist = build_simple()
        clone = netlist.copy()
        clone.add_gate("extra", GateType.OR, ("a", "b"))
        assert netlist.gate_for("extra") is None

    def test_copy_preserves_flip_flops(self):
        netlist = Netlist()
        netlist.add_input("d")
        netlist.add_flip_flop("q", "d")
        clone = netlist.copy("renamed")
        assert clone.name == "renamed"
        assert clone.flip_flops[0].q == "q"
