"""Tests for the numpy RL substrate: networks, policy, buffer, environments, PPO."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.buffer import RolloutBuffer
from repro.rl.env import Environment, StepResult, VectorizedEnvironment
from repro.rl.nn import Adam, Mlp, clip_gradients
from repro.rl.policy import MaskedCategoricalPolicy, masked_softmax
from repro.rl.ppo import PpoConfig, PpoTrainer


class TestMlp:
    def test_output_shape(self):
        mlp = Mlp(4, (8,), 3, seed=0)
        out = mlp.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Mlp(0, (4,), 2)

    def test_backward_requires_forward(self):
        mlp = Mlp(2, (4,), 1, seed=0)
        with pytest.raises(RuntimeError):
            mlp.backward(np.zeros((1, 1)))

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        mlp = Mlp(3, (5,), 2, seed=1)
        inputs = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 2))

        def loss_value():
            return 0.5 * float(np.sum((mlp.forward(inputs) - targets) ** 2))

        outputs = mlp.forward(inputs)
        weight_grads, bias_grads = mlp.backward(outputs - targets)
        epsilon = 1e-6
        for layer in range(len(mlp.weights)):
            flat_index = np.unravel_index(
                rng.integers(mlp.weights[layer].size), mlp.weights[layer].shape
            )
            original = mlp.weights[layer][flat_index]
            mlp.weights[layer][flat_index] = original + epsilon
            loss_plus = loss_value()
            mlp.weights[layer][flat_index] = original - epsilon
            loss_minus = loss_value()
            mlp.weights[layer][flat_index] = original
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            assert weight_grads[layer][flat_index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_deterministic_given_seed(self):
        first = Mlp(3, (4,), 2, seed=42)
        second = Mlp(3, (4,), 2, seed=42)
        x = np.ones((1, 3))
        assert np.allclose(first.forward(x), second.forward(x))


class TestAdamAndClipping:
    def test_adam_reduces_quadratic_loss(self):
        parameter = np.array([5.0])
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.step([2 * parameter])
        assert abs(parameter[0]) < 0.1

    def test_adam_gradient_count_checked(self):
        optimizer = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])

    def test_clip_gradients_scales_large_norm(self):
        grads = [np.array([3.0, 4.0])]
        clipped = clip_gradients(grads, max_norm=1.0)
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)

    def test_clip_gradients_no_op_when_small(self):
        grads = [np.array([0.1, 0.1])]
        assert clip_gradients(grads, max_norm=1.0)[0] is grads[0]


class TestMaskedSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        probabilities = masked_softmax(logits, None)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_masked_entries_get_zero_probability(self):
        logits = np.array([[5.0, 1.0, 1.0]])
        masks = np.array([[0.0, 1.0, 1.0]])
        probabilities = masked_softmax(logits, masks)
        assert probabilities[0, 0] == 0.0
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_all_masked_raises(self):
        with pytest.raises(ValueError):
            masked_softmax(np.zeros((1, 3)), np.zeros((1, 3)))

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            masked_softmax(np.zeros((1, 3)), np.zeros((1, 2)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=1000))
    def test_never_samples_masked_action(self, num_actions, seed):
        rng = np.random.default_rng(seed)
        policy = MaskedCategoricalPolicy(4, num_actions + 1, hidden_sizes=(8,), seed=seed)
        masks = np.ones((3, num_actions + 1))
        masks[:, 0] = 0.0  # always mask action 0
        observations = rng.normal(size=(3, 4))
        output = policy.act(observations, masks)
        assert (output.actions != 0).all()

    def test_deterministic_action_is_argmax(self):
        policy = MaskedCategoricalPolicy(3, 4, hidden_sizes=(8,), seed=0)
        observations = np.random.default_rng(0).normal(size=(2, 3))
        output = policy.act(observations, deterministic=True)
        probabilities = policy.action_probabilities(observations)
        assert np.array_equal(output.actions, probabilities.argmax(axis=1))

    def test_evaluate_actions_matches_act_log_probs(self):
        policy = MaskedCategoricalPolicy(3, 5, hidden_sizes=(8,), seed=0)
        observations = np.random.default_rng(1).normal(size=(4, 3))
        output = policy.act(observations)
        log_probs, entropies, _ = policy.evaluate_actions(observations, output.actions)
        assert np.allclose(log_probs, output.log_probs)
        assert (entropies >= 0).all()


class TestRolloutBuffer:
    def test_gae_matches_manual_computation(self):
        buffer = RolloutBuffer(num_steps=3, num_envs=1, observation_dim=1, num_actions=2)
        rewards = [1.0, 0.0, 2.0]
        values = [0.5, 0.25, 0.75]
        for step in range(3):
            buffer.add(
                observations=np.zeros((1, 1)), actions=np.zeros(1, dtype=np.int64),
                masks=np.ones((1, 2)), rewards=np.array([rewards[step]]),
                dones=np.array([False]), log_probs=np.zeros(1),
                values=np.array([values[step]]),
            )
        gamma, lam = 0.9, 0.8
        advantages, returns = buffer.compute_returns(np.array([1.0]), gamma, lam)
        # Manual GAE.
        deltas = [
            rewards[0] + gamma * values[1] - values[0],
            rewards[1] + gamma * values[2] - values[1],
            rewards[2] + gamma * 1.0 - values[2],
        ]
        adv2 = deltas[2]
        adv1 = deltas[1] + gamma * lam * adv2
        adv0 = deltas[0] + gamma * lam * adv1
        assert advantages[:, 0] == pytest.approx([adv0, adv1, adv2])
        assert returns[:, 0] == pytest.approx(np.array([adv0, adv1, adv2]) + np.array(values))

    def test_done_stops_bootstrapping(self):
        buffer = RolloutBuffer(num_steps=2, num_envs=1, observation_dim=1, num_actions=2)
        for step, done in enumerate([True, False]):
            buffer.add(np.zeros((1, 1)), np.zeros(1, dtype=np.int64), np.ones((1, 2)),
                       np.array([1.0]), np.array([done]), np.zeros(1), np.array([0.0]))
        advantages, _ = buffer.compute_returns(np.array([100.0]), 0.99, 0.95)
        # First step is terminal: its advantage must ignore the later value.
        assert advantages[0, 0] == pytest.approx(1.0)

    def test_overflow_and_underflow_guarded(self):
        buffer = RolloutBuffer(num_steps=1, num_envs=1, observation_dim=1, num_actions=2)
        with pytest.raises(RuntimeError):
            buffer.compute_returns(np.zeros(1), 0.9, 0.9)
        buffer.add(np.zeros((1, 1)), np.zeros(1, dtype=np.int64), np.ones((1, 2)),
                   np.zeros(1), np.array([False]), np.zeros(1), np.zeros(1))
        with pytest.raises(RuntimeError):
            buffer.add(np.zeros((1, 1)), np.zeros(1, dtype=np.int64), np.ones((1, 2)),
                       np.zeros(1), np.array([False]), np.zeros(1), np.zeros(1))


class _LineWorld(Environment):
    """Tiny deterministic environment: action 1 gives reward, action 0 does not."""

    def __init__(self, horizon=8):
        self._horizon = horizon
        self._steps = 0

    @property
    def observation_dim(self):
        return 2

    @property
    def num_actions(self):
        return 2

    def reset(self):
        self._steps = 0
        return np.array([1.0, 0.0])

    def step(self, action):
        self._steps += 1
        reward = 1.0 if action == 1 else 0.0
        done = self._steps >= self._horizon
        return StepResult(np.array([1.0, 0.0]), reward, done, {"step": self._steps})


class TestVectorizedEnvironment:
    def test_requires_consistent_spaces(self):
        class Other(_LineWorld):
            @property
            def num_actions(self):
                return 3

        with pytest.raises(ValueError):
            VectorizedEnvironment([_LineWorld(), Other()])

    def test_auto_reset_on_done(self):
        vec = VectorizedEnvironment([_LineWorld(horizon=1)])
        vec.reset()
        observations, rewards, dones, infos = vec.step(np.array([1]))
        assert dones[0]
        assert rewards[0] == 1.0
        assert infos[0]["step"] == 1
        assert observations.shape == (1, 2)

    def test_action_count_checked(self):
        vec = VectorizedEnvironment([_LineWorld(), _LineWorld()])
        vec.reset()
        with pytest.raises(ValueError):
            vec.step(np.array([0]))

    def test_empty_env_list_rejected(self):
        with pytest.raises(ValueError):
            VectorizedEnvironment([])


class TestPpoTrainer:
    def test_learns_trivial_task(self):
        vec = VectorizedEnvironment([_LineWorld(), _LineWorld()])
        config = PpoConfig(num_steps=32, minibatch_size=32, num_epochs=4,
                           hidden_sizes=(16,), entropy_coef=0.0, learning_rate=3e-3)
        trainer = PpoTrainer(vec, config=config, seed=0)
        trainer.train(1536)
        probabilities = trainer.policy.action_probabilities(np.array([[1.0, 0.0]]))
        assert probabilities[0, 1] > 0.8

    def test_summary_statistics_populated(self):
        vec = VectorizedEnvironment([_LineWorld()])
        config = PpoConfig(num_steps=16, minibatch_size=16, num_epochs=1, hidden_sizes=(8,))
        summary = PpoTrainer(vec, config=config, seed=0).train(64)
        assert summary.total_steps >= 64
        assert summary.total_episodes > 0
        assert summary.loss_history
        assert summary.elapsed_seconds > 0
        assert summary.steps_per_minute > 0

    def test_boosted_exploration_config(self):
        config = PpoConfig()
        boosted = config.boosted_exploration()
        assert boosted.entropy_coef == 1.0
        assert boosted.gae_lambda == 0.99
        assert config.entropy_coef != boosted.entropy_coef

    def test_entropy_bonus_keeps_policy_stochastic(self):
        vec_low = VectorizedEnvironment([_LineWorld()])
        vec_high = VectorizedEnvironment([_LineWorld()])
        base = dict(num_steps=32, minibatch_size=32, num_epochs=4, hidden_sizes=(16,),
                    learning_rate=3e-3)
        low = PpoTrainer(vec_low, config=PpoConfig(entropy_coef=0.0, **base), seed=1)
        high = PpoTrainer(vec_high, config=PpoConfig(entropy_coef=1.0, **base), seed=1)
        low.train(1024)
        high.train(1024)
        observation = np.array([[1.0, 0.0]])
        entropy_low = -np.sum(low.policy.action_probabilities(observation)
                              * np.log(low.policy.action_probabilities(observation) + 1e-12))
        entropy_high = -np.sum(high.policy.action_probabilities(observation)
                               * np.log(high.policy.action_probabilities(observation) + 1e-12))
        assert entropy_high > entropy_low
