"""Tests for the netlist builder and the word-level building blocks.

Arithmetic blocks are checked against integer arithmetic, both exhaustively
at small widths and with hypothesis at random widths/operands.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import blocks
from repro.circuits.builder import NetlistBuilder
from repro.circuits.gates import GateType
from repro.circuits.validate import validate_netlist
from repro.simulation.logic_sim import BitParallelSimulator


def evaluate_bus(netlist, assignment, bus):
    """Simulate one assignment and read a bus back as an integer."""
    simulator = BitParallelSimulator(netlist)
    vector = np.array([[assignment[s] for s in simulator.sources]], dtype=np.uint8)
    values = simulator.run_patterns(vector)
    return sum(int(values[net][0]) << i for i, net in enumerate(bus))


def input_assignment(prefix_values):
    """Build a net -> value assignment for buses declared via builder.inputs."""
    assignment = {}
    for prefix, value, width in prefix_values:
        for bit in range(width):
            assignment[f"{prefix}[{bit}]"] = (value >> bit) & 1
    return assignment


class TestBuilder:
    def test_fresh_names_unique(self):
        builder = NetlistBuilder()
        names = {builder.fresh("n") for _ in range(100)}
        assert len(names) == 100

    def test_output_with_rename_buffers(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        b = builder.input("b")
        y = builder.and_(a, b)
        renamed = builder.output(y, name="result")
        netlist = builder.build()
        assert renamed == "result"
        assert netlist.is_output("result")
        assert netlist.gate_for("result").gate_type is GateType.BUF

    def test_mux2_truth_table(self):
        builder = NetlistBuilder()
        s, a, b = builder.input("s"), builder.input("a"), builder.input("b")
        y = builder.mux2(s, a, b)
        builder.output(y, name="y")
        netlist = builder.build()
        simulator = BitParallelSimulator(netlist)
        for sv, av, bv in itertools.product([0, 1], repeat=3):
            vector = np.array([[{"s": sv, "a": av, "b": bv}[n] for n in simulator.sources]],
                              dtype=np.uint8)
            out = simulator.run_patterns(vector)["y"][0]
            assert out == (bv if sv else av)

    def test_single_input_reduction_becomes_buffer(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        y = builder.and_(a)
        netlist = builder.build()
        assert netlist.gate_for(y).gate_type is GateType.BUF

    def test_built_netlists_validate(self):
        builder = NetlistBuilder()
        a = builder.inputs("a", 4)
        b = builder.inputs("b", 4)
        total, carry = blocks.ripple_carry_adder(builder, a, b)
        builder.outputs(total, prefix="s")
        builder.output(carry, name="c")
        assert validate_netlist(builder.build()).ok


class TestAdder:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive_small_widths(self, width):
        builder = NetlistBuilder(f"add{width}")
        a = builder.inputs("a", width)
        b = builder.inputs("b", width)
        total, carry = blocks.ripple_carry_adder(builder, a, b)
        builder.outputs(total, prefix="s")
        builder.output(carry, name="carry")
        netlist = builder.build()
        for va, vb in itertools.product(range(2**width), repeat=2):
            assignment = input_assignment([("a", va, width), ("b", vb, width)])
            result = evaluate_bus(netlist, assignment, [f"s[{i}]" for i in range(width)])
            carry_value = evaluate_bus(netlist, assignment, ["carry"])
            assert result + (carry_value << width) == va + vb

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=4, max_value=8), st.data())
    def test_random_operands(self, width, data):
        va = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        vb = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        builder = NetlistBuilder("add")
        a = builder.inputs("a", width)
        b = builder.inputs("b", width)
        total, carry = blocks.ripple_carry_adder(builder, a, b)
        builder.outputs(total, prefix="s")
        builder.output(carry, name="carry")
        netlist = builder.build()
        assignment = input_assignment([("a", va, width), ("b", vb, width)])
        result = evaluate_bus(netlist, assignment, [f"s[{i}]" for i in range(width)])
        carry_value = evaluate_bus(netlist, assignment, ["carry"])
        assert result + (carry_value << width) == va + vb

    def test_width_mismatch_rejected(self):
        builder = NetlistBuilder()
        a = builder.inputs("a", 3)
        b = builder.inputs("b", 2)
        with pytest.raises(ValueError):
            blocks.ripple_carry_adder(builder, a, b)


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive(self, width):
        builder = NetlistBuilder(f"mul{width}")
        a = builder.inputs("a", width)
        b = builder.inputs("b", width)
        product = blocks.array_multiplier(builder, a, b)
        builder.outputs(product, prefix="p")
        netlist = builder.build()
        assert len(product) == 2 * width
        bus = [f"p[{i}]" for i in range(2 * width)]
        for va, vb in itertools.product(range(2**width), repeat=2):
            assignment = input_assignment([("a", va, width), ("b", vb, width)])
            assert evaluate_bus(netlist, assignment, bus) == va * vb


class TestDecoderAndComparators:
    def test_decoder_one_hot(self):
        builder = NetlistBuilder("dec")
        select = builder.inputs("s", 3)
        outputs = blocks.decoder(builder, select)
        builder.outputs(outputs, prefix="o")
        netlist = builder.build()
        bus = [f"o[{i}]" for i in range(8)]
        for value in range(8):
            assignment = input_assignment([("s", value, 3)])
            word = evaluate_bus(netlist, assignment, bus)
            assert word == 1 << value

    def test_equality_comparator(self):
        builder = NetlistBuilder("eq")
        a = builder.inputs("a", 3)
        b = builder.inputs("b", 3)
        builder.output(blocks.equality_comparator(builder, a, b), name="eq")
        netlist = builder.build()
        for va, vb in itertools.product(range(8), repeat=2):
            assignment = input_assignment([("a", va, 3), ("b", vb, 3)])
            assert evaluate_bus(netlist, assignment, ["eq"]) == int(va == vb)

    def test_magnitude_comparator(self):
        builder = NetlistBuilder("gt")
        a = builder.inputs("a", 3)
        b = builder.inputs("b", 3)
        builder.output(blocks.magnitude_comparator(builder, a, b), name="gt")
        netlist = builder.build()
        for va, vb in itertools.product(range(8), repeat=2):
            assignment = input_assignment([("a", va, 3), ("b", vb, 3)])
            assert evaluate_bus(netlist, assignment, ["gt"]) == int(va > vb)

    def test_parity_tree(self):
        builder = NetlistBuilder("par")
        bits = builder.inputs("x", 5)
        builder.output(blocks.parity_tree(builder, bits), name="p")
        netlist = builder.build()
        for value in range(32):
            assignment = input_assignment([("x", value, 5)])
            assert evaluate_bus(netlist, assignment, ["p"]) == bin(value).count("1") % 2

    def test_mux_tree_selects_correct_bus(self):
        builder = NetlistBuilder("muxtree")
        select = builder.inputs("s", 2)
        choices = [builder.inputs(f"c{i}", 2) for i in range(4)]
        result = blocks.mux_tree(builder, select, choices)
        builder.outputs(result, prefix="y")
        netlist = builder.build()
        values = [0b01, 0b10, 0b11, 0b00]
        for sel in range(4):
            assignment = input_assignment(
                [("s", sel, 2)] + [(f"c{i}", values[i], 2) for i in range(4)]
            )
            assert evaluate_bus(netlist, assignment, ["y[0]", "y[1]"]) == values[sel]

    def test_mux_tree_wrong_choice_count_rejected(self):
        builder = NetlistBuilder()
        select = builder.inputs("s", 2)
        with pytest.raises(ValueError):
            blocks.mux_tree(builder, select, [builder.inputs("c", 2)])


class TestAlu:
    def test_alu_operations(self):
        width = 4
        builder = NetlistBuilder("alu")
        a = builder.inputs("a", width)
        b = builder.inputs("b", width)
        opcode = builder.inputs("op", 2)
        result = blocks.alu(builder, a, b, opcode)
        builder.outputs(result, prefix="y")
        netlist = builder.build()
        bus = [f"y[{i}]" for i in range(width)]
        operations = {0: lambda x, y: (x + y) % 2**width, 1: lambda x, y: x & y,
                      2: lambda x, y: x | y, 3: lambda x, y: x ^ y}
        for op, func in operations.items():
            for va, vb in [(3, 5), (15, 1), (0, 0), (7, 7), (12, 10)]:
                assignment = input_assignment(
                    [("a", va, width), ("b", vb, width), ("op", op, 2)]
                )
                assert evaluate_bus(netlist, assignment, bus) == func(va, vb)
