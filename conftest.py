"""Root pytest bootstrap.

Makes the src-layout package importable when the repository is used from a
fresh checkout without ``pip install -e .`` — an installed ``repro`` (editable
or regular) always takes precedence.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))
